"""The streamed telemetry pipeline: shards, chunked parse, cache layers.

Everything here guards one contract: streaming is a *memory*
optimization, never a semantic one.  Sharded renderings reassemble
byte-identical to the monolithic text, chunked and manifest-driven
parses reproduce the serial parser's log, statistics and quarantine
exactly, the sharded console cache layer round-trips under the same
dataset key, and a fully streamed paper run reproduces the committed
golden digests bit for bit.  The bugfix satellites ride along: LRU
eviction, the coverage edge clamp, fused-record seam recovery and the
half-up fleet rounding.
"""

import dataclasses
import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import ArtifactStore, load_dataset, persist_dataset
from repro.cache.pipeline import (
    _CONSOLE_MANIFEST_LAYER,
    _console_shard_layer,
    _layer_key,
    dataset_key,
    has_dataset,
    load_or_simulate,
)
from repro.stream import (
    MANIFEST_NAME,
    ShardCorruption,
    iter_shard_lines,
    iter_shard_payloads,
    read_manifest,
    reassemble_text,
    verify_shards,
    write_shards,
)
from repro.telemetry.console import ConsoleLogWriter
from repro.telemetry.coverage import infer_outage_windows
from repro.telemetry.parallel_parse import (
    parse_lines_chunked,
    parse_shards_parallel,
)
from repro.telemetry.ingestion import IngestionError
from repro.telemetry.parser import ConsoleLogParser

_COLUMNS = ("time", "gpu", "etype", "structure", "job", "parent", "aux")


def assert_logs_equal(a, b):
    for name in _COLUMNS:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=f"column {name}"
        )


@pytest.fixture(scope="module")
def console_lines(smoke_dataset):
    """The smoke scenario's rendered console lines (no trailing '')."""
    return smoke_dataset.console_text.splitlines()


@pytest.fixture(scope="module")
def gpu_record_lines(smoke_dataset, console_lines):
    """Two console lines that each parse to exactly one GPU event."""
    parser = ConsoleLogParser(smoke_dataset.machine)
    picked = []
    for line in console_lines:
        _log, stats = parser.parse_lines([line])
        if stats.parsed_events == 1:
            picked.append(line)
        if len(picked) == 2:
            return picked
    raise AssertionError("smoke console has fewer than two GPU records")


# ---------------------------------------------------------------------------
# Shard round-trip mechanics
# ---------------------------------------------------------------------------


class TestShards:
    def test_empty_stream(self, tmp_path):
        manifest = write_shards([], tmp_path)
        assert manifest.total_lines == 0
        assert manifest.shards == ()
        assert (tmp_path / MANIFEST_NAME).exists()
        assert reassemble_text(tmp_path) == ""
        assert list(iter_shard_lines(tmp_path)) == []

    def test_single_line_shards(self, tmp_path):
        manifest = write_shards(
            ["a", "bb", "ccc"], tmp_path, max_lines_per_shard=1
        )
        assert [s.lines for s in manifest.shards] == [1, 1, 1]
        assert reassemble_text(tmp_path) == "a\nbb\nccc\n"
        assert list(iter_shard_lines(tmp_path)) == ["a", "bb", "ccc"]

    def test_manifest_round_trip(self, tmp_path):
        written = write_shards(
            [f"line {i}" for i in range(10)], tmp_path, max_lines_per_shard=4
        )
        assert read_manifest(tmp_path) == written
        assert written.total_lines == 10
        assert [s.lines for s in written.shards] == [4, 4, 2]
        assert verify_shards(tmp_path) == []

    def test_payload_chunking_preserves_lines(self):
        chunks = list(
            iter_shard_payloads(iter(["x", "y", "z"]), max_lines_per_shard=2)
        )
        assert chunks == [(2, "x\ny\n"), (1, "z\n")]

    def test_invalid_shard_size(self, tmp_path):
        with pytest.raises(ValueError):
            write_shards(["a"], tmp_path, max_lines_per_shard=0)

    def test_garbled_shard_detected(self, tmp_path):
        manifest = write_shards(
            [f"line {i}" for i in range(8)], tmp_path, max_lines_per_shard=4
        )
        victim = tmp_path / manifest.shards[1].name
        payload = bytearray(victim.read_bytes())
        payload[0] ^= 0xFF
        victim.write_bytes(bytes(payload))
        assert verify_shards(tmp_path) == [manifest.shards[1].name]
        with pytest.raises(ShardCorruption):
            list(iter_shard_lines(tmp_path))

    def test_torn_final_shard_detected(self, tmp_path, smoke_dataset):
        manifest = write_shards(
            [f"line {i}" for i in range(8)], tmp_path, max_lines_per_shard=4
        )
        victim = tmp_path / manifest.shards[-1].name
        victim.write_bytes(victim.read_bytes()[:-3])
        with pytest.raises(ShardCorruption):
            reassemble_text(tmp_path)
        with pytest.raises(ShardCorruption):
            parse_shards_parallel(tmp_path, smoke_dataset.machine)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_manifest(tmp_path)

    def test_unreadable_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("not json {")
        with pytest.raises(ShardCorruption):
            read_manifest(tmp_path)


# ---------------------------------------------------------------------------
# Parse equivalence: chunked and manifest-driven vs the serial parser
# ---------------------------------------------------------------------------


class TestParseEquivalence:
    def test_chunked_matches_serial_smoke(self, smoke_dataset, console_lines):
        serial = ConsoleLogParser(smoke_dataset.machine).parse_lines(
            console_lines
        )
        chunked = parse_lines_chunked(
            iter(console_lines), smoke_dataset.machine, chunk_lines=1000
        )
        assert_logs_equal(serial[0], chunked[0])
        assert serial[1] == chunked[1]

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_shard_parse_matches_serial(
        self, tmp_path, smoke_dataset, console_lines, n_workers
    ):
        lines = console_lines[:6000]
        write_shards(lines, tmp_path, max_lines_per_shard=1024)
        serial = ConsoleLogParser(smoke_dataset.machine).parse_lines(lines)
        sharded = parse_shards_parallel(
            tmp_path,
            smoke_dataset.machine,
            n_workers=n_workers,
            serial_threshold=0,
        )
        assert_logs_equal(serial[0], sharded[0])
        assert serial[1] == sharded[1]

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(data=st.data())
    def test_property_shard_round_trip(
        self, data, tmp_path_factory, smoke_dataset, console_lines
    ):
        """Any line mix, any shard size: bytes and parse both identical.

        Lines are drawn from real console records and printable
        garbage; shard granularity spans the degenerate single-line
        case.  The sharded parse must reproduce the serial parser's
        log, statistics and quarantine verbatim, and the reassembled
        bytes must equal the monolithic rendering.
        """
        pool = console_lines[:200]
        line = st.one_of(
            st.sampled_from(pool),
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FF
                ),
                max_size=80,
            ),
        )
        lines = data.draw(st.lists(line, max_size=60))
        shard_size = data.draw(st.integers(min_value=1, max_value=50))
        directory = tmp_path_factory.mktemp("prop-shards")

        manifest = write_shards(
            lines, directory, max_lines_per_shard=shard_size
        )
        assert manifest.total_lines == len(lines)
        expected_text = "\n".join(lines) + "\n" if lines else ""
        assert reassemble_text(directory) == expected_text

        serial = ConsoleLogParser(smoke_dataset.machine).parse_lines(lines)
        sharded = parse_shards_parallel(directory, smoke_dataset.machine)
        assert_logs_equal(serial[0], sharded[0])
        assert serial[1] == sharded[1]

    def test_chunked_strict_error_has_global_line_number(
        self, smoke_dataset, gpu_record_lines
    ):
        lines = [gpu_record_lines[0]] * 5 + ["garbage GPU XID zzz"]
        with pytest.raises(IngestionError) as excinfo:
            parse_lines_chunked(
                iter(lines), smoke_dataset.machine, chunk_lines=2, strict=True
            )
        assert excinfo.value.line_no == 6


# ---------------------------------------------------------------------------
# Seam recovery: a newline lost at a shard boundary (satellite bugfix)
# ---------------------------------------------------------------------------


class TestSeamRecovery:
    def test_fused_records_both_recovered(
        self, smoke_dataset, gpu_record_lines
    ):
        a, b = gpu_record_lines
        log, stats = ConsoleLogParser(smoke_dataset.machine).parse_lines(
            [a + b]
        )
        assert stats.total_lines == 2  # the seam splits into two logical lines
        assert stats.parsed_events == 2
        assert stats.resynced_lines == 1
        reference, _ = ConsoleLogParser(smoke_dataset.machine).parse_lines(
            [a, b]
        )
        assert_logs_equal(log, reference)

    def test_lost_newline_at_shard_boundary(
        self, tmp_path, smoke_dataset, console_lines
    ):
        """Reassembling shards whose boundary newline was dropped must
        not lose the two records it fuses."""
        lines = console_lines[:400]
        manifest = write_shards(lines, tmp_path, max_lines_per_shard=200)
        payloads = [
            (tmp_path / shard.name).read_text() for shard in manifest.shards
        ]
        assert len(payloads) == 2
        fused_text = payloads[0][:-1] + payloads[1]  # newline torn at the seam
        fused_lines = fused_text.splitlines()
        assert len(fused_lines) == len(lines) - 1

        reference = ConsoleLogParser(smoke_dataset.machine).parse_lines(lines)
        log, stats = ConsoleLogParser(smoke_dataset.machine).parse_lines(
            fused_lines
        )
        assert stats.total_lines == reference[1].total_lines
        assert stats.parsed_events == reference[1].parsed_events
        assert stats.resynced_lines == reference[1].resynced_lines + 1
        assert_logs_equal(log, reference[0])

    def test_fused_line_at_parse_chunk_boundary(
        self, smoke_dataset, gpu_record_lines
    ):
        a, b = gpu_record_lines
        lines = [a, b, a + b, b, a]
        serial = ConsoleLogParser(smoke_dataset.machine).parse_lines(lines)
        for chunk_lines in (1, 2, 3):
            chunked = parse_lines_chunked(
                iter(lines), smoke_dataset.machine, chunk_lines=chunk_lines
            )
            assert_logs_equal(serial[0], chunked[0])
            assert serial[1] == chunked[1]


# ---------------------------------------------------------------------------
# Streamed simulation and the sharded console cache layer
# ---------------------------------------------------------------------------


def _streamed_replica(dataset):
    """The same simulation, reset to parse through the streamed path."""
    return dataclasses.replace(
        dataset, streaming=True, _console_text=None, _parsed=None
    )


class TestStreamedSimulation:
    def test_streamed_parse_bit_identical(self, smoke_dataset):
        streamed = _streamed_replica(smoke_dataset)
        assert_logs_equal(
            smoke_dataset.parsed_events, streamed.parsed_events
        )
        assert smoke_dataset.parse_stats == streamed.parse_stats
        # The whole point: the monolithic text never materialized.
        assert streamed._console_text is None

    def test_chaos_replacement_overrides_streaming(self, smoke_dataset):
        streamed = _streamed_replica(smoke_dataset)
        modified = streamed.with_console_text("one garbled line")
        assert modified.provenance == "modified"
        assert modified.parse_stats.total_lines == 1
        assert modified.parse_stats.parsed_events == 0


class TestShardedCacheLayer:
    @pytest.fixture()
    def store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    def test_streaming_persist_round_trip(self, store, smoke_dataset):
        persist_dataset(
            store, smoke_dataset, streaming=True, shard_lines=10_000
        )
        dkey = dataset_key(smoke_dataset.scenario)
        assert store.has(_layer_key(dkey, _CONSOLE_MANIFEST_LAYER))
        assert store.has(_layer_key(dkey, _console_shard_layer(0)))
        assert not store.has(_layer_key(dkey, "console"))
        assert has_dataset(store, smoke_dataset.scenario)

        cached = load_dataset(store, smoke_dataset.scenario)
        assert cached is not None
        assert cached.console_text == smoke_dataset.console_text
        assert_logs_equal(
            cached.parsed_events, smoke_dataset.parsed_events
        )

    def test_corrupt_shard_degrades_to_recompute(self, store, smoke_dataset):
        persist_dataset(
            store, smoke_dataset, streaming=True, shard_lines=10_000
        )
        dkey = dataset_key(smoke_dataset.scenario)
        shard_key = _layer_key(dkey, _console_shard_layer(0))
        store.put(shard_key, "tampered\n", "text")  # valid artifact, wrong sha
        assert load_dataset(store, smoke_dataset.scenario) is None

        dataset, warm = load_or_simulate(
            smoke_dataset.scenario, store, streaming=True
        )
        assert not warm
        assert dataset.console_text == smoke_dataset.console_text

    def test_streamed_cache_key_matches_monolithic(self, store, smoke_dataset):
        """Monolithic persist then streamed load: same key, same bytes."""
        persist_dataset(store, smoke_dataset)
        cached = load_dataset(store, smoke_dataset.scenario)
        assert cached is not None
        assert cached.console_text == smoke_dataset.console_text


class TestWriterShards:
    def test_console_shards_match_to_text(self, tmp_path, smoke_dataset):
        writer = ConsoleLogWriter(smoke_dataset.machine)
        events = smoke_dataset.injection.events
        manifest = writer.write_shards(
            events, tmp_path, max_lines_per_shard=7_000
        )
        assert len(manifest.shards) >= 2
        assert reassemble_text(tmp_path) == writer.to_text(events)


# ---------------------------------------------------------------------------
# Satellite bugfixes: LRU eviction, coverage clamp, grid rounding
# ---------------------------------------------------------------------------


class TestEvictionLRU:
    def _put(self, store, key, mtime):
        store.put(key, f"payload {key}", "text")
        os.utime(store._path(key), (mtime, mtime))

    def test_read_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        self._put(store, "d1/fig/old", 1_000.0)
        self._put(store, "d1/fig/mid", 2_000.0)
        self._put(store, "d1/fig/new", 3_000.0)
        # Reading the oldest artifact must make it the *hottest*.
        assert store.get("d1/fig/old") is not None
        evicted = store.evict(max_bytes=0)
        assert evicted[-1] == "d1/fig/old"
        assert evicted[:2] == ["d1/fig/mid", "d1/fig/new"]

    def test_unread_artifacts_evict_in_write_order(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        self._put(store, "d1/fig/a", 1_000.0)
        self._put(store, "d1/fig/b", 2_000.0)
        entry = next(e for e in store.entries() if e.key == "d1/fig/a")
        evicted = store.evict(max_bytes=entry.nbytes)
        assert evicted == ["d1/fig/a"]
        assert store.has("d1/fig/b")

    def test_touch_tolerates_racing_delete(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "s")
        store.put("d1/fig/x", "payload", "text")

        def exploding_utime(*args, **kwargs):
            raise OSError("unlinked under us")

        monkeypatch.setattr(os, "utime", exploding_utime)
        assert store.get("d1/fig/x") == "payload"  # read still succeeds


class TestCoverageEdgeClamp:
    def test_trailing_outage_clamped_not_dropped(self):
        # Events stop at t=20 in a [0, 1000) window with a 100 s gap
        # threshold: the tail silence is one outage clamped to the
        # window end.  (The old end anchor sat 1e-9 inside the window,
        # leaving a phantom observed sliver that erased this outage.)
        windows = infer_outage_windows(
            [0.0, 10.0, 20.0], 0.0, 1000.0, min_gap_s=100.0
        )
        assert windows.windows == ((0.0, 70.0),)
        assert windows.n_outages == 1
        assert windows.coverage_fraction == pytest.approx(0.07)

    def test_leading_outage_clamped_symmetrically(self):
        windows = infer_outage_windows(
            [980.0, 990.0], 0.0, 1000.0, min_gap_s=100.0
        )
        assert windows.windows == ((930.0, 1000.0),)

    def test_healthy_stream_full_coverage(self):
        times = np.arange(0.0, 1000.0, 50.0)
        windows = infer_outage_windows(times, 0.0, 1000.0, min_gap_s=100.0)
        assert windows.coverage_fraction == 1.0


class TestGridRounding:
    def test_known_fleet_sizes(self):
        from repro.sweep.grid import _scaled_nodes
        from repro.topology.machine import N_COMPUTE_NODES

        assert _scaled_nodes(1.0) == N_COMPUTE_NODES == 18_688
        assert _scaled_nodes(2.0) == 37_376
        assert _scaled_nodes(4.0) == 74_752

    def test_monotone_over_dense_grid(self):
        from repro.sweep.grid import _scaled_nodes

        sizes = [_scaled_nodes(s) for s in np.linspace(0.25, 4.0, 1501)]
        assert sizes == sorted(sizes)

    def test_half_ties_round_up_not_to_even(self):
        from repro.sweep.grid import _scaled_nodes
        from repro.topology.machine import N_COMPUTE_NODES

        checked = 0
        for k in range(0, 400, 2):  # even targets: banker's would round DOWN
            scale = (k + 0.5) / N_COMPUTE_NODES
            if N_COMPUTE_NODES * scale != k + 0.5:
                continue  # float round-trip inexact for this k; skip
            assert round(N_COMPUTE_NODES * scale) == k  # the old bug
            assert _scaled_nodes(scale) == k + 1
            checked += 1
        assert checked > 0

    def test_near_duplicate_scales_get_unique_labels(self):
        from repro.sweep import SweepSpec
        from repro.sweep.grid import expand

        points = expand(
            SweepSpec(
                name="labels",
                base="smoke",
                days=1.0,
                scales=(1.0, 1.0 + 1e-12, 1.0 + 2e-12),
            )
        )
        labels = [p.label for p in points]
        assert len(set(labels)) == len(points)
        # Distinct %g renderings stay human-friendly (no escalation).
        assert points[0].label == "anchor"


# ---------------------------------------------------------------------------
# End to end: streamed sweeps and the golden paper run
# ---------------------------------------------------------------------------


class TestStreamedSweep:
    def test_streamed_table_matches_monolithic(self, tmp_path):
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            name="stream-eq", base="smoke", days=2.0, scales=(1.0, 2.0)
        )
        mono = run_sweep(spec, ArtifactStore(tmp_path / "mono"))
        streamed = run_sweep(
            spec, ArtifactStore(tmp_path / "streamed"), streaming=True
        )
        assert streamed.table_sha256 == mono.table_sha256


class TestStreamedGolden:
    def test_streamed_paper_run_matches_golden_digests(self, paper_dataset):
        """The full paper scenario through the streamed pipeline must
        reproduce the committed golden figure digests bit for bit."""
        from repro.core.golden import golden_diff, golden_document
        from repro.core.study import TitanStudy

        golden_file = Path(__file__).parent / "golden" / "paper.json"
        committed = json.loads(golden_file.read_text())
        streamed = _streamed_replica(paper_dataset)
        doc = golden_document(TitanStudy(streamed))
        assert golden_diff(committed, doc) == []
        assert streamed._console_text is None
