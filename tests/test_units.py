"""Tests for the study calendar (repro.units)."""

import datetime

import numpy as np
import pytest

from repro import units


def test_study_window_is_21_months():
    assert units.N_STUDY_MONTHS == 21
    assert units.STUDY_MONTHS[0] == (2013, 6)
    assert units.STUDY_MONTHS[-1] == (2015, 2)


def test_month_bounds_contiguous():
    for i in range(units.N_STUDY_MONTHS - 1):
        _, end = units.month_bounds(i)
        start_next, _ = units.month_bounds(i + 1)
        assert end == start_next


def test_month_bounds_out_of_range():
    with pytest.raises(IndexError):
        units.month_bounds(21)
    with pytest.raises(IndexError):
        units.month_bounds(-1)


def test_epoch_is_zero():
    assert units.datetime_to_timestamp(units.STUDY_EPOCH) == 0.0
    assert units.month_bounds(0)[0] == 0.0


def test_timestamp_roundtrip():
    when = datetime.datetime(2014, 7, 15, 13, 45, 30)
    ts = units.datetime_to_timestamp(when)
    assert units.timestamp_to_datetime(ts) == when


def test_month_index_vectorized():
    # First second of the window, mid-window, and just before the end.
    ts = np.array([0.0, units.month_bounds(7)[0] + 5.0, units.STUDY_END - 1.0])
    idx = units.month_index(ts)
    assert idx.tolist() == [0, 7, 20]


def test_month_index_out_of_window():
    idx = units.month_index(np.array([-1.0, units.STUDY_END]))
    assert idx.tolist() == [-1, -1]


def test_month_starts_usable_as_histogram_edges():
    edges = units.month_starts()
    assert edges.shape == (22,)
    assert np.all(np.diff(edges) > 0)
    assert edges[-1] == units.STUDY_END


def test_month_labels():
    assert units.month_label(0) == "Jun'13"
    assert units.month_label(20) == "Feb'15"
    assert len(units.month_labels()) == 21


def test_study_end_matches_last_month_bound():
    assert units.STUDY_END == units.month_bounds(20)[1]


def test_fahrenheit_delta():
    assert units.fahrenheit_delta_to_celsius(18.0) == pytest.approx(10.0)
    assert units.fahrenheit_delta_to_celsius(10.5) == pytest.approx(5.8333, abs=1e-3)


def test_time_constants():
    assert units.HOUR == 3600
    assert units.DAY == 24 * units.HOUR
    assert units.WEEK == 7 * units.DAY
