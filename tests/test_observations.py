"""End-to-end validation of the paper's Observations 1–14.

Runs the full analysis pipeline (console-log text → SEC parse → toolkit)
on the canonical paper scenario and asserts every qualitative claim —
and every quantitative claim up to the tolerance a different machine
sample allows.  This is the reproduction's contract; EXPERIMENTS.md
records the exact measured numbers next to the paper's.
"""

import numpy as np
import pytest

from repro.core import TitanStudy
from repro.core.stats import top_k_share
from repro.errors.xid import ErrorType
from repro.faults.rates import DRIVER_UPGRADE_TIME, OTB_FIX_TIME
from repro.units import HOUR, month_index


@pytest.fixture(scope="module")
def study(paper_dataset):
    return TitanStudy(paper_dataset)


class TestObservation1:
    """MTBF of DBEs ≈ 160 h (one per week); not bursty."""

    def test_mtbf_near_160_hours(self, study):
        fig2 = study.fig2()
        assert fig2.mtbf_hours == pytest.approx(160.0, rel=0.25)

    def test_roughly_one_per_week(self, study):
        fig2 = study.fig2()
        weeks = (study.window[1] - study.window[0]) / (7 * 24 * HOUR)
        assert fig2.total == pytest.approx(weeks, rel=0.3)

    def test_not_bursty(self, study):
        assert not study.fig2().burstiness.is_bursty

    def test_every_month_active(self, study):
        """No quiet edges: DBEs occur throughout the study window."""
        counts = study.fig2().counts
        assert np.count_nonzero(counts) >= 15


class TestObservation2:
    """nvidia-smi undercounts DBEs relative to the console log."""

    def test_nvsmi_undercounts(self, study):
        console, nvsmi = study.nvsmi_vs_console_dbe()
        assert nvsmi < console

    def test_some_cards_report_dbe_gt_sbe(self, study):
        anomalies = study.ds.nvsmi.inconsistent_cards()
        assert len(anomalies) > 0  # the logging inconsistency exists


class TestObservation3:
    """86 % of DBEs in device memory, 14 % in the register file."""

    def test_structure_split(self, study):
        fractions = study.fig3().structure_fractions
        assert fractions["device_memory"] == pytest.approx(0.86, abs=0.08)
        assert fractions["register_file"] == pytest.approx(0.14, abs=0.08)
        assert set(fractions) == {"device_memory", "register_file"}

    def test_cage_gradient(self, study):
        cages = study.fig3().cage_events
        assert cages[2] > cages[0]  # top cage sees more DBEs

    def test_distinct_cards_leq_events(self, study):
        fig3 = study.fig3()
        assert fig3.cage_distinct_cards.sum() <= fig3.cage_events.sum()
        assert study.dbe_unique_cards() < fig3.cage_events.sum()


class TestObservation4:
    """Off-the-bus dominated pre-Dec'13, then quenched by soldering;
    upper cages affected more; rarely repeats on a card."""

    def test_quenched_after_fix(self, study):
        counts = study.fig4().counts
        fix_month = int(month_index(OTB_FIX_TIME)[0])
        before = counts[:fix_month].sum()
        after = counts[fix_month:].sum()
        assert before > 10 * max(after, 1)

    def test_upper_cage_bias(self, study):
        cages = study.fig5().cage_events
        assert cages[2] > cages[0]

    def test_rarely_repeats_per_card(self, study):
        fig5 = study.fig5()
        assert fig5.cage_distinct_cards.sum() >= 0.9 * fig5.cage_events.sum()


class TestObservation5:
    """Page retirement appears Jan'14+; delay profile of Fig. 8."""

    def test_onset_january_2014(self, study):
        counts = study.fig6().counts
        onset = int(month_index(DRIVER_UPGRADE_TIME)[0])
        assert counts[:onset].sum() == 0
        assert counts[onset:].sum() > 10

    def test_delay_profile(self, study):
        fig8 = study.fig8()
        # bimodal: a ≤10-minute mode and a ≫6-hour tail, near-empty middle
        assert fig8.n_within_10min >= 10
        assert fig8.n_beyond_6h >= 8
        assert fig8.n_10min_to_6h <= 0.25 * fig8.n_within_10min

    def test_dbe_pairs_without_retirement_exist(self, study):
        assert study.fig8().n_dbe_pairs_without_retirement > 5

    def test_parser_would_catch_new_xids(self, study):
        """Obs. 5's operational lesson: the rule catalog is complete for
        this study — no unknown XIDs slipped through."""
        assert study.ds.parse_stats.unknown_xid_lines == 0


class TestObservation6:
    """Application XIDs bursty and frequent; driver XIDs neither."""

    def test_xid13_bursty(self, study):
        fig10 = study.fig10()
        assert fig10.burstiness.is_bursty
        assert fig10.total > 300  # frequent

    def test_driver_xids_not_bursty(self, study):
        for fig in study.fig11().values():
            assert fig.burstiness is not None
            assert not fig.burstiness.is_bursty

    def test_rare_driver_xids(self, study):
        fig9 = study.fig9()
        assert fig9[32].total < 20  # "less than ten times" order
        assert fig9[43].total > 100  # the frequent driver errors
        assert fig9[44].total > 100

    def test_xid42_absent(self, study):
        log = study.log.of_type(ErrorType.VIDEO_PROCESSOR_DRIVER)
        assert len(log) == 0


class TestObservation7:
    """App errors echo to all job nodes within 5 s; spatial pattern
    follows the folded-torus allocation."""

    def test_five_second_filter_collapses_echoes(self, study):
        fig12 = study.fig12()
        assert fig12.n_unfiltered > 50 * fig12.n_filtered

    def test_alternating_cabinet_stripe(self, study):
        fig12 = study.fig12()
        # raw and children grids show the stripe; the filtered grid does not
        assert fig12.alternation_unfiltered > 0.05
        assert fig12.alternation_children > 0.05
        assert fig12.alternation_filtered < fig12.alternation_unfiltered

    def test_echo_within_window_is_whole_job(self, study):
        """Parents + echoes of one job appear within the 5 s window."""
        ds = study.ds
        ev = ds.events  # ground truth carries parent links
        xid13 = ev.of_type(ErrorType.GRAPHICS_ENGINE_EXCEPTION)
        parents = xid13.select(xid13.parent < 0)
        # pick a parent with a real job and check echo span
        for i in range(len(parents)):
            job = int(parents.job[i])
            if job >= 0 and ds.trace.n_nodes[job] > 10:
                t0 = float(parents.time[i])
                same_job = xid13.select(
                    (xid13.job == job)
                    & (xid13.time >= t0)
                    & (xid13.time < t0 + 6.0)
                )
                assert len(same_job) == int(ds.trace.n_nodes[job])
                break
        else:  # pragma: no cover
            pytest.fail("no suitable parent event found")


class TestObservation8:
    """One node's XID 13 is really hardware: it repeats on that node
    regardless of the application."""

    def test_bad_node_dominates_filtered_counts(self, study):
        rates = study.ds.scenario.rates
        log = study.log.of_type(ErrorType.GRAPHICS_ENGINE_EXCEPTION)
        from repro.core.filtering import sequential_dedup

        parents = sequential_dedup(log, 5.0).kept
        counts = np.bincount(parents.gpu, minlength=study.ds.machine.n_gpus)
        bad = rates.bad_xid13_gpu
        # the bad node is the single most recurrent XID 13 reporter
        assert counts[bad] == counts.max()
        assert counts[bad] > 10

    def test_bad_node_fires_across_many_jobs(self, study):
        rates = study.ds.scenario.rates
        log = study.log.of_type(ErrorType.GRAPHICS_ENGINE_EXCEPTION)
        on_bad = log.select(log.gpu == rates.bad_xid13_gpu)
        jobs = set(on_bad.job.tolist()) - {-1}
        assert len(jobs) > 5  # not one buggy application


class TestObservation9:
    """Follow-probability structure of Fig. 13."""

    def test_dbe_followed_by_cleanup_and_retirement(self, study):
        fm = study.fig13()
        assert fm.value(ErrorType.DBE, ErrorType.PREEMPTIVE_CLEANUP) > 0.3
        assert fm.value(ErrorType.DBE, ErrorType.ECC_PAGE_RETIREMENT) > 0.1

    def test_13_followed_by_43(self, study):
        fm = study.fig13()
        assert fm.value(
            ErrorType.GRAPHICS_ENGINE_EXCEPTION, ErrorType.GPU_STOPPED
        ) > 0.25

    def test_app_xids_have_high_diagonal(self, study):
        fm = study.fig13()
        assert fm.value(
            ErrorType.GRAPHICS_ENGINE_EXCEPTION,
            ErrorType.GRAPHICS_ENGINE_EXCEPTION,
        ) > 0.9  # job-wide echoes

    def test_isolated_types_low_diagonal(self, study):
        fm = study.fig13()
        for etype in (ErrorType.OFF_THE_BUS, ErrorType.DRIVER_FIRMWARE,
                      ErrorType.DBE, ErrorType.ECC_PAGE_RETIREMENT):
            assert fm.value(etype, etype) < 0.15

    def test_without_same_type_zeroes_diagonal(self, study):
        fm = study.fig13().without_same_type()
        assert np.all(np.diag(fm.matrix) == 0.0)


class TestObservation10:
    """SBE distribution highly skewed; <5 % of cards ever affected;
    homogeneous once top-50 offenders removed; distinct cards flat
    across cages."""

    def test_fraction_of_cards(self, study):
        fig14 = study.fig14()
        assert fig14.n_cards_with_sbe < 1000
        assert fig14.fleet_fraction_with_sbe < 0.05

    def test_skew_decreases_with_exclusion(self, study):
        skew = study.fig14().skewness
        assert skew["all"] > skew["minus_top10"] > skew["minus_top50"]

    def test_top_offenders_dominate(self, study):
        totals = study.ds.nvsmi_table["sbe_total"].astype(float)
        assert top_k_share(totals, 10) > 0.2
        assert top_k_share(totals, 50) > 0.5

    def test_cage_trend_all_cards(self, study):
        events = study.fig15().cage_events
        assert events["all"][2] == events["all"].max()  # topmost cage max

    def test_minus_top50_homogeneous(self, study):
        counts = study.fig15().cage_events["minus_top50"].astype(float)
        assert counts.max() / counts.min() < 1.25

    def test_distinct_cards_flat_across_cages(self, study):
        distinct = study.fig15().cage_distinct["all"].astype(float)
        assert distinct.max() / distinct.min() < 1.2


class TestObservations11_12:
    """SBE vs utilization: memory weak (<0.5); nodes/core-hours good
    Spearman with low Pearson; exclusion weakens everything."""

    @pytest.fixture(scope="class")
    def report(self, study):
        return study.figs16_19()

    def test_memory_metrics_weak(self, report):
        for metric in ("max_memory_gb", "total_memory"):
            assert abs(report.all_jobs[metric].spearman) < 0.5
            assert abs(report.all_jobs[metric].pearson) < 0.5

    def test_nodes_and_core_hours_good(self, report):
        assert report.all_jobs["n_nodes"].spearman > 0.5
        assert report.all_jobs["gpu_core_hours"].spearman > 0.5

    def test_core_hours_strongest(self, report):
        assert (
            report.all_jobs["gpu_core_hours"].spearman
            >= report.all_jobs["n_nodes"].spearman - 0.05
        )

    def test_exclusion_weakens(self, report):
        for metric in ("n_nodes", "gpu_core_hours"):
            assert (
                report.excluding_offenders[metric].spearman
                < report.all_jobs[metric].spearman
            )
            assert report.excluding_offenders[metric].spearman < 0.5


class TestObservation13:
    """UserID is a better SBE proxy than job-level core-hours."""

    def test_user_level_stronger(self, study):
        fig20 = study.fig20()
        report = study.figs16_19()
        assert (
            fig20.all_users.spearman
            > report.all_jobs["gpu_core_hours"].spearman
        )

    def test_user_level_magnitude(self, study):
        assert study.fig20().all_users.spearman > 0.7

    def test_exclusion_keeps_user_level_strong(self, study):
        fig20 = study.fig20()
        assert fig20.excluding_offenders.spearman > 0.6


class TestObservation14:
    """Workload shape: memory hogs are small and short, etc."""

    def test_all_claims(self, study):
        chars = study.fig21()
        assert chars.observation_14_holds()

    def test_individual_claims(self, study):
        chars = study.fig21()
        assert chars.top_memory_jobs_core_hour_ratio < 1.0
        assert chars.nodes_vs_core_hours_spearman > 0.3
        assert chars.long_walltime_small_node_share > 0.2
        assert chars.top_memory_jobs_node_ratio < 1.0


class TestTables:
    def test_table1(self, study):
        rows = dict(study.table1())
        assert rows["Double Bit Error (detected by the SECDED ECC, but not corrected)"] == "48"
        assert rows["ECC page retirement error"] == "63,64"

    def test_table2(self, study):
        xids = sorted(x for _, x in study.table2())
        assert xids == [13, 31, 32, 38, 42, 43, 44, 45, 57, 58, 59, 62]


class TestStudyScale:
    """The reproduction operates at the paper's scale."""

    def test_280_million_node_hours(self, study):
        """Section 2.2: 'more than 280 million node hours worth of
        console logs'. 18,688 GPUs over Jun'13–Feb'15 is exactly that."""
        start, end = study.window
        node_hours = study.ds.machine.n_gpus * (end - start) / HOUR
        assert node_hours > 280e6
        assert node_hours < 300e6

    def test_event_volume_realistic(self, study):
        """A couple of years of console logs runs to ~10^6 GPU lines."""
        assert 10**5 < len(study.log) < 10**7
