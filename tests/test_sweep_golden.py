"""The sweep engine's Titan-scale anchor against the golden trace.

The all-baseline point of a ``base="paper"`` sweep *is* the paper
scenario — same content address, same figures, same scorecard — so the
sweep engine must reproduce ``tests/golden/paper.json`` exactly:
figure digests, headline statistics and observation verdicts, cold,
on a warm resume, and across a kill -9 at a journal barrier.

The session ``paper_dataset`` fixture is persisted into this module's
store first, so the engine warm-loads the 21-month telemetry instead
of re-simulating it; only the figure pipeline runs cold here.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache import ArtifactStore, persist_dataset
from repro.sweep import SweepSpec, expand, load_sweep_table, run_sweep
from repro.sweep.engine import point_summary_doc

_SRC = Path(__file__).resolve().parents[1] / "src"
_GOLDEN = Path(__file__).resolve().parent / "golden" / "paper.json"


def _spec(name):
    return SweepSpec(name=name, base="paper")


@pytest.fixture(scope="module")
def golden():
    return json.loads(_GOLDEN.read_text())


@pytest.fixture(scope="module")
def store(tmp_path_factory, paper_dataset):
    """A store pre-seeded with the session's paper telemetry."""
    store = ArtifactStore(tmp_path_factory.mktemp("sweep-golden-store"))
    persist_dataset(store, paper_dataset)
    return store


class TestTitanAnchor:
    def test_anchor_point_reproduces_the_golden_document(
        self, store, golden
    ):
        (anchor,) = expand(_spec("golden"))
        assert anchor.is_anchor
        doc = point_summary_doc(anchor, store)
        assert doc["point"]["scenario"] == golden["scenario"]
        assert doc["figures"] == {
            name: fig["sha256"] for name, fig in golden["figures"].items()
        }
        assert doc["scorecard"] == golden["scorecard"]
        assert doc["headline"] == golden["headline"]

    def test_cold_run_then_warm_resume_byte_identical(self, store, golden):
        spec = _spec("golden")
        cold = run_sweep(spec, store)
        assert cold.n_computed == 1
        row = cold.table["rows"][0]
        assert row["is_anchor"]
        assert row["dbe_mtbf_hours"] == golden["headline"]["dbe_mtbf_hours"]
        assert row["n_nodes"] == 18_688

        warm = run_sweep(spec, store, resume=True)
        assert warm.n_verified == 1 and warm.n_computed == 0
        assert warm.table_sha256 == cold.table_sha256

    def test_kill_resume_matches_a_clean_run(self, store, tmp_path):
        spec = _spec("golden-chaos")
        specfile = tmp_path / "spec.json"
        specfile.write_text(json.dumps(spec.to_doc()))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env.pop("REPRO_CACHE_DIR", None)
        argv = [
            sys.executable, "-m", "repro", "sweep", "run",
            "--spec", str(specfile),
            "--cache-dir", str(store.root), "--quiet",
        ]
        killed = subprocess.run(
            argv,
            env={**env, "REPRO_PROCFAULT": "kill:2"},
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert killed.returncode == -9, killed.stderr
        resumed = subprocess.run(
            argv + ["--resume"],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
            check=True,
        )
        assert "table sha256" in resumed.stdout
        _table, after_kill = load_sweep_table(spec, store)

        # a clean run of the same sweep must land on the same bytes
        report = run_sweep(spec, store, resume=True)
        _table, clean = load_sweep_table(spec, store)
        assert clean == after_kill
        assert report.table_sha256 == _sha(after_kill)


def _sha(payload: bytes) -> str:
    import hashlib

    return hashlib.sha256(payload).hexdigest()
