"""Tests for offender exclusion, correlation reports and Fig 21 analysis."""

import numpy as np
import pytest

from repro.core.correlation import (
    sbe_resource_correlations,
    sorted_curves,
    user_level_correlation,
)
from repro.core.offenders import (
    exclude_jobs_using,
    exclude_slots,
    jobs_using_slots,
    offender_slots,
)
from repro.core.workload_analysis import panel_curves, workload_characteristics
from repro.workload.jobs import JobTraceBuilder


class TestOffenderSlots:
    def test_ranking(self):
        sbe = np.array([0, 5, 2, 9, 9, 0])
        top = offender_slots(sbe, 3)
        assert top.tolist() == [3, 4, 1]  # ties broken by slot id

    def test_zero_k(self):
        assert offender_slots(np.ones(4), 0).size == 0

    def test_negative_k(self):
        with pytest.raises(ValueError):
            offender_slots(np.ones(4), -1)

    def test_exclude_slots(self):
        sbe = np.array([1, 2, 3])
        out = exclude_slots(sbe, np.array([1]))
        assert out.tolist() == [1, 0, 3]
        assert sbe[1] == 2  # original untouched


def make_trace_with_runs(runs_per_job):
    b = JobTraceBuilder()
    for i, runs in enumerate(runs_per_job):
        b.add(user=i, submit=0.0, start=float(i), end=float(i) + 10.0,
              gpu_util=0.5, max_memory_gb=1.0, total_memory=1.0,
              n_apruns=1, runs=runs)
    return b.freeze()


class TestJobsUsingSlots:
    def test_membership(self):
        trace = make_trace_with_runs([[(0, 10)], [(20, 5)], [(10, 10)]])
        # identity rank map: slot == rank
        rank = np.arange(100)
        mask = jobs_using_slots(trace, np.array([22]), rank)
        assert mask.tolist() == [False, True, False]

    def test_multiple_slots(self):
        trace = make_trace_with_runs([[(0, 10)], [(20, 5)], [(10, 10)]])
        rank = np.arange(100)
        mask = jobs_using_slots(trace, np.array([5, 12]), rank)
        assert mask.tolist() == [True, False, True]

    def test_empty_slots(self):
        trace = make_trace_with_runs([[(0, 10)]])
        assert not jobs_using_slots(trace, np.array([], dtype=int), np.arange(20)).any()

    def test_nonidentity_rank_map(self):
        trace = make_trace_with_runs([[(0, 2)]])  # ranks 0,1
        rank = np.array([5, 0, 1, 2])  # gpu 1 has rank 0
        mask = jobs_using_slots(trace, np.array([1]), rank)
        assert mask.tolist() == [True]
        mask2 = jobs_using_slots(trace, np.array([0]), rank)  # gpu 0 -> rank 5
        assert mask2.tolist() == [False]

    def test_exclude_jobs_using(self):
        trace = make_trace_with_runs([[(0, 10)], [(20, 5)], [(10, 10)]])
        rank = np.arange(100)
        arrays = {
            "sbe": np.array([10, 20, 30]),
            "n_nodes": np.array([10, 5, 10]),
        }
        out = exclude_jobs_using(
            arrays, trace, np.array([22]), rank, np.array([0, 1, 2])
        )
        assert out["sbe"].tolist() == [10, 30]


class TestCorrelationReport:
    def make_arrays(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        nodes = rng.integers(1, 1000, n).astype(float)
        hours = nodes * rng.uniform(0.5, 2.0, n)
        sbe = rng.poisson(hours / 200.0)
        return {
            "job": np.arange(n),
            "user": rng.integers(0, 20, n),
            "n_nodes": nodes,
            "gpu_core_hours": hours,
            "max_memory_gb": rng.uniform(1, 32, n),
            "total_memory": rng.uniform(1, 500, n),
            "walltime_h": rng.uniform(0.1, 24, n),
            "sbe": sbe,
        }

    def test_report_structure(self):
        arrays = self.make_arrays()
        report = sbe_resource_correlations(arrays)
        assert set(report.all_jobs) == {
            "max_memory_gb", "total_memory", "n_nodes", "gpu_core_hours"
        }
        assert report.all_jobs["gpu_core_hours"].spearman > 0.5
        assert abs(report.all_jobs["max_memory_gb"].spearman) < 0.2
        assert report.excluding_offenders == {}

    def test_with_exclusion(self):
        arrays = self.make_arrays()
        excluded = {k: v[:200] for k, v in arrays.items()}
        report = sbe_resource_correlations(arrays, excluded_arrays=excluded)
        assert report.excluding_offenders["n_nodes"].n_jobs == 200

    def test_p_values(self):
        arrays = self.make_arrays(n=150)
        rng = np.random.default_rng(1)
        report = sbe_resource_correlations(arrays, rng=rng)
        assert report.all_jobs["gpu_core_hours"].p_value < 0.05

    def test_sorted_curves(self):
        metric = np.array([3.0, 1.0, 2.0])
        sbe = np.array([30, 10, 20])
        m, s = sorted_curves(metric, sbe)
        assert np.all(np.diff(m) >= 0)  # sorted ascending
        assert m.mean() == pytest.approx(1.0)
        assert s.mean() == pytest.approx(1.0)

    def test_sorted_curves_zero_sbe(self):
        m, s = sorted_curves(np.array([1.0, 2.0]), np.array([0, 0]))
        assert s.tolist() == [0.0, 0.0]

    def test_user_level_aggregation(self):
        arrays = self.make_arrays()
        result = user_level_correlation(arrays)
        assert result.n_users <= 20
        assert result.core_hours_by_user.shape == (result.n_users,)
        # aggregation strengthens (or keeps) rank correlation
        assert result.spearman > 0.4

    def test_user_level_empty(self):
        arrays = {k: np.array([]) for k in self.make_arrays()}
        with pytest.raises(ValueError):
            user_level_correlation(arrays)


class TestWorkloadCharacteristics:
    def make_trace(self, n=2000, seed=3):
        rng = np.random.default_rng(seed)
        b = JobTraceBuilder()
        for i in range(n):
            kind = rng.random()
            if kind < 0.1:  # memory hog: small, short, heavy per node
                nodes = int(rng.integers(1, 64))
                wall = rng.uniform(0.2, 2.0)
                mem = rng.uniform(24, 32)
            elif kind < 0.25:  # marathon: small but the longest walltimes
                nodes = int(rng.integers(1, 48))
                wall = rng.uniform(18.0, 24.0)
                mem = rng.uniform(1, 12)
            else:  # ordinary/capability
                nodes = int(rng.integers(1, 4000))
                wall = rng.uniform(0.5, 16.0)
                mem = rng.uniform(1, 12)
            b.add(user=i % 50, submit=0.0, start=0.0, end=wall * 3600,
                  gpu_util=0.6, max_memory_gb=mem, total_memory=mem * wall,
                  n_apruns=1, runs=[(0, nodes)])
        return b.freeze()

    def test_observation_14(self):
        chars = workload_characteristics(self.make_trace())
        assert chars.observation_14_holds()
        assert chars.top_memory_jobs_core_hour_ratio < 1.0
        assert chars.top_memory_jobs_node_ratio < 1.0
        assert chars.nodes_vs_core_hours_spearman > 0.3

    def test_small_trace_rejected(self):
        with pytest.raises(ValueError):
            workload_characteristics(self.make_trace(n=10))

    def test_panel_curves(self):
        a, b = panel_curves(
            np.array([3.0, 1.0, 2.0]),
            np.array([3.0, 1.0, 2.0]),
            np.array([6.0, 2.0, 4.0]),
        )
        assert np.all(np.diff(a) > 0)
        assert a.mean() == pytest.approx(1.0)
        assert np.allclose(a, b)
