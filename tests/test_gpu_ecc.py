"""Tests for SECDED semantics and page retirement."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.ecc import EccEngine, EccOutcome, PageRetirementTracker
from repro.gpu.k20x import K20X, MemoryStructure


class TestEccEngine:
    def setup_method(self):
        self.engine = EccEngine()

    def test_sbe_corrected_on_secded(self):
        for s in K20X.secded_structures():
            assert self.engine.classify(s, 1) is EccOutcome.CORRECTED

    def test_dbe_detected_uncorrected(self):
        out = self.engine.classify(MemoryStructure.DEVICE_MEMORY, 2)
        assert out is EccOutcome.DETECTED_UNCORRECTED
        assert self.engine.crashes_application(out)

    def test_sbe_never_crashes(self):
        out = self.engine.classify(MemoryStructure.L2_CACHE, 1)
        assert not self.engine.crashes_application(out)

    def test_parity_detects_odd(self):
        assert (
            self.engine.classify(MemoryStructure.READONLY_CACHE, 1)
            is EccOutcome.PARITY_DETECTED
        )
        assert (
            self.engine.classify(MemoryStructure.READONLY_CACHE, 3)
            is EccOutcome.PARITY_DETECTED
        )

    def test_parity_misses_even(self):
        assert (
            self.engine.classify(MemoryStructure.READONLY_CACHE, 2)
            is EccOutcome.UNDETECTED
        )

    def test_multibit_conservative(self):
        assert (
            self.engine.classify(MemoryStructure.DEVICE_MEMORY, 3)
            is EccOutcome.DETECTED_UNCORRECTED
        )

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            self.engine.classify(MemoryStructure.L2_CACHE, 0)


class TestPageRetirement:
    def make(self, active_from=0.0, **kw):
        return PageRetirementTracker(active_from=active_from, **kw)

    def test_dbe_retires_immediately(self):
        t = self.make()
        rec = t.record_dbe(page=5, timestamp=100.0)
        assert rec is not None
        assert rec.cause == "dbe"
        assert t.is_retired(5)

    def test_single_sbe_does_not_retire(self):
        t = self.make()
        assert t.record_sbe(page=7, timestamp=1.0) is None
        assert not t.is_retired(7)

    def test_two_sbes_same_page_retire(self):
        t = self.make()
        t.record_sbe(page=7, timestamp=1.0)
        rec = t.record_sbe(page=7, timestamp=2.0)
        assert rec is not None
        assert rec.cause == "double_sbe"

    def test_two_sbes_different_pages_do_not_retire(self):
        t = self.make()
        assert t.record_sbe(page=1, timestamp=1.0) is None
        assert t.record_sbe(page=2, timestamp=2.0) is None
        assert t.n_retired == 0

    def test_inactive_before_driver_rollout(self):
        t = self.make(active_from=1000.0)
        assert t.record_dbe(page=1, timestamp=500.0) is None
        assert t.n_retired == 0
        # but becomes active after
        assert t.record_dbe(page=2, timestamp=1500.0) is not None

    def test_pre_rollout_sbes_still_counted(self):
        """An SBE before rollout plus one after should retire the page —
        the InfoROM kept the address all along."""
        t = self.make(active_from=1000.0)
        t.record_sbe(page=3, timestamp=500.0)
        rec = t.record_sbe(page=3, timestamp=1500.0)
        assert rec is not None

    def test_retired_page_absorbs_further_errors(self):
        t = self.make()
        t.record_dbe(page=9, timestamp=1.0)
        assert t.record_dbe(page=9, timestamp=2.0) is None
        assert t.record_sbe(page=9, timestamp=3.0) is None
        assert t.n_retired == 1

    def test_capacity_limit(self):
        t = self.make(max_retired_pages=2)
        t.record_dbe(page=0, timestamp=1.0)
        t.record_dbe(page=1, timestamp=2.0)
        assert t.capacity_exhausted
        assert t.record_dbe(page=2, timestamp=3.0) is None
        assert t.n_retired == 2

    def test_page_range_validated(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.record_sbe(page=-1, timestamp=0.0)
        with pytest.raises(ValueError):
            t.record_dbe(page=K20X.n_device_pages, timestamp=0.0)

    def test_records_ordered(self):
        t = self.make()
        t.record_dbe(page=4, timestamp=1.0)
        t.record_dbe(page=2, timestamp=2.0)
        pages = [r.page for r in t.retired_pages]
        assert pages == [4, 2]

    @given(pages=st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_retirement_invariants(self, pages):
        """Property: a page retires at most once; retirement count never
        exceeds distinct touched pages; double-SBE rule honored."""
        t = self.make()
        for i, p in enumerate(pages):
            t.record_sbe(page=p, timestamp=float(i))
        assert t.n_retired <= len(set(pages))
        retired = {r.page for r in t.retired_pages}
        assert len(retired) == t.n_retired
        for p in retired:
            assert pages.count(p) >= 2
