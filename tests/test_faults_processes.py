"""Tests for the stochastic point processes."""

import numpy as np
import pytest

from repro.faults.processes import (
    burst_process,
    hpp_times,
    nhpp_times_piecewise,
    thinned_times,
    weibull_interarrival_times,
)
from repro.rng import RngTree


def gen(name="p"):
    return RngTree(123).fresh_generator(name)


class TestHPP:
    def test_count_matches_rate(self):
        times = hpp_times(0.01, 0.0, 1e6, gen())
        assert times.size == pytest.approx(10_000, rel=0.05)

    def test_sorted_and_in_window(self):
        times = hpp_times(0.02, 100.0, 5000.0, gen())
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 100.0 and times.max() < 5000.0

    def test_zero_rate(self):
        assert hpp_times(0.0, 0.0, 1e6, gen()).size == 0

    def test_empty_window(self):
        assert hpp_times(1.0, 5.0, 5.0, gen()).size == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            hpp_times(-1.0, 0.0, 1.0, gen())

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            hpp_times(1.0, 10.0, 0.0, gen())

    def test_deterministic(self):
        a = hpp_times(0.01, 0.0, 1e5, gen())
        b = hpp_times(0.01, 0.0, 1e5, gen())
        assert np.array_equal(a, b)

    def test_poisson_interarrivals(self):
        """Inter-arrival CV should be ~1 for a Poisson process."""
        times = hpp_times(0.05, 0.0, 1e6, gen())
        gaps = np.diff(times)
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.05)


class TestNHPP:
    def test_segment_rates(self):
        times = nhpp_times_piecewise(
            np.array([0.0, 1e5, 2e5]), np.array([0.05, 0.0]), gen()
        )
        assert times.size == pytest.approx(5000, rel=0.1)
        assert times.max() < 1e5  # nothing in the zero-rate segment

    def test_validation(self):
        with pytest.raises(ValueError):
            nhpp_times_piecewise(np.array([0.0, 1.0]), np.array([1.0, 2.0]), gen())
        with pytest.raises(ValueError):
            nhpp_times_piecewise(np.array([1.0, 0.0]), np.array([1.0]), gen())
        with pytest.raises(ValueError):
            nhpp_times_piecewise(np.array([0.0, 1.0]), np.array([-1.0]), gen())

    def test_empty(self):
        out = nhpp_times_piecewise(np.array([0.0]), np.array([]), gen())
        assert out.size == 0


class TestBurst:
    def test_burstier_than_poisson(self):
        times = burst_process(
            0.0,
            5e6,
            gen(),
            burst_rate_per_second=2e-5,
            events_per_burst_mean=6.0,
            burst_duration_s=3600.0,
        )
        gaps = np.diff(times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3  # clustered

    def test_mean_count(self):
        times = burst_process(
            0.0,
            1e7,
            gen(),
            burst_rate_per_second=1e-5,
            events_per_burst_mean=5.0,
            burst_duration_s=100.0,
        )
        assert times.size == pytest.approx(1e7 * 1e-5 * 5.0, rel=0.15)

    def test_modulation_concentrates_events(self):
        edges = np.array([0.0, 5e5, 1e6])
        times = burst_process(
            0.0,
            1e6,
            gen(),
            burst_rate_per_second=5e-5,
            events_per_burst_mean=3.0,
            burst_duration_s=10.0,
            modulation=np.array([3.0, 0.1]),
            modulation_edges=edges,
        )
        early = np.count_nonzero(times < 5e5)
        late = times.size - early
        assert early > 10 * late

    def test_modulation_requires_edges(self):
        with pytest.raises(ValueError):
            burst_process(
                0.0,
                1.0,
                gen(),
                burst_rate_per_second=1.0,
                events_per_burst_mean=2.0,
                burst_duration_s=1.0,
                modulation=np.array([1.0]),
            )

    def test_burst_size_minimum(self):
        with pytest.raises(ValueError):
            burst_process(
                0.0,
                1.0,
                gen(),
                burst_rate_per_second=1.0,
                events_per_burst_mean=0.5,
                burst_duration_s=1.0,
            )


class TestWeibull:
    def test_shape_one_is_poisson(self):
        times = weibull_interarrival_times(100.0, 1.0, 0.0, 1e6, gen())
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.05)

    def test_shape_below_one_clusters(self):
        times = weibull_interarrival_times(100.0, 0.5, 0.0, 1e6, gen())
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() > 1.5

    def test_shape_above_one_regularizes(self):
        times = weibull_interarrival_times(100.0, 3.0, 0.0, 1e6, gen())
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            weibull_interarrival_times(0.0, 1.0, 0.0, 1.0, gen())
        with pytest.raises(ValueError):
            weibull_interarrival_times(1.0, 0.0, 0.0, 1.0, gen())


class TestThinning:
    def test_scalar_probability(self):
        times = np.arange(10_000, dtype=float)
        kept = thinned_times(times, 0.3, gen())
        assert kept.size == pytest.approx(3000, rel=0.1)

    def test_extremes(self):
        times = np.arange(100, dtype=float)
        assert thinned_times(times, 0.0, gen()).size == 0
        assert thinned_times(times, 1.0, gen()).size == 100

    def test_per_event_probability(self):
        times = np.arange(10_000, dtype=float)
        p = np.where(times < 5000, 0.0, 1.0)
        kept = thinned_times(times, p, gen())
        assert kept.min() >= 5000

    def test_validation(self):
        with pytest.raises(ValueError):
            thinned_times(np.arange(3.0), 1.5, gen())
