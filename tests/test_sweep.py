"""Tests for :mod:`repro.sweep`: spec, grid, engine, reducer, CLI.

The engine contract under test is the one the supervised runner
already honors one level down, lifted to whole scenario points:

* a sweep is a deterministic grid — same spec, same points, same
  content-addressed summary keys, in every process;
* the all-baseline *anchor* point is the untouched base scenario;
* a run can be killed at any journal barrier and resumed to a
  byte-identical sensitivity table;
* warm reruns (journal gone, store intact) reuse summaries without
  recomputing physics.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache import ArtifactStore, dataset_key, scenario_fingerprint
from repro.supervise.journal import JournalError
from repro.sweep import (
    RateMultipliers,
    SweepSpec,
    expand,
    load_sweep_table,
    preset,
    run_sweep,
    sweep_status,
)
from repro.sweep.reduce import (
    render_projection,
    render_sensitivity,
    scaling_projection,
    write_table_csv,
)
from repro.units import DAY

_SRC = Path(__file__).resolve().parents[1] / "src"


def _tiny(name, **overrides):
    # 3 days is the shortest window that still yields a job trace big
    # enough for the workload-characterization figure (>= 100 jobs).
    kwargs = dict(name=name, base="smoke", days=3.0)
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """One shared store: summaries are content-addressed, so tests
    reusing the same points warm-load each other's artifacts."""
    return ArtifactStore(tmp_path_factory.mktemp("sweep-store"))


# ---------------------------------------------------------------------------
# spec
# ---------------------------------------------------------------------------


class TestSpec:
    def test_presets(self):
        assert preset("smoke").n_points == 6
        assert preset("sensitivity").n_points == 12
        assert preset("scaling").n_points == 6
        assert preset("scaling").base == "paper"
        with pytest.raises(ValueError, match="unknown sweep preset"):
            preset("nope")

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(base="exotic"), "unknown base"),
            (dict(days=-1.0), "days must be positive"),
            (dict(scales=()), "at least one value"),
            (dict(scales=(1.0, 1.0)), "duplicate"),
            (dict(scales=(0.0,)), "scale must be positive"),
            (dict(windows=(0.0,)), "window must be positive"),
            (dict(bursts=(-2.0,)), "burst must be positive"),
            (dict(corruptions=(1.0,)), "corruption level"),
            (dict(rates=(RateMultipliers(dbe=-1.0),)), "must be positive"),
        ],
    )
    def test_validation_rejects(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            _tiny("bad", **overrides).validate()

    def test_doc_round_trip(self):
        spec = _tiny(
            "rt",
            scales=(1.0, 2.0),
            rates=(RateMultipliers(), RateMultipliers(dbe=2.0, xid=0.5)),
            windows=(None, 1.5),
            corruptions=(0.0, 0.05),
            availability=True,
        )
        again = SweepSpec.from_doc(spec.to_doc())
        assert again == spec
        assert again.key() == spec.key()

    def test_from_file_and_unknown_fields(self, tmp_path):
        doc = _tiny("f").to_doc()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        assert SweepSpec.from_file(path) == _tiny("f")
        doc["surprise"] = 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unknown sweep spec fields"):
            SweepSpec.from_file(path)
        doc.pop("surprise")
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unsupported sweep spec"):
            SweepSpec.from_file(path)

    def test_key_moves_with_every_axis(self):
        base = _tiny("k")
        perturbed = [
            _tiny("k2"),
            _tiny("k", seed=base.seed + 1),
            _tiny("k", days=4.0),
            _tiny("k", scales=(1.0, 2.0)),
            _tiny("k", rates=(RateMultipliers(otb=2.0),)),
            _tiny("k", windows=(1.0,)),
            _tiny("k", bursts=(2.0,)),
            _tiny("k", corruptions=(0.01,)),
            _tiny("k", availability=True),
        ]
        keys = {p.key() for p in perturbed}
        assert base.key() not in keys
        assert len(keys) == len(perturbed)


# ---------------------------------------------------------------------------
# grid
# ---------------------------------------------------------------------------


class TestGrid:
    def test_anchor_is_the_untouched_base_scenario(self):
        spec = _tiny("g", scales=(1.0, 2.0))
        points = expand(spec)
        base = spec.base_scenario()
        anchor = points[0]
        assert anchor.is_anchor
        assert anchor.scenario == base
        assert anchor.dataset_key == dataset_key(base)
        other = points[1]
        assert not other.is_anchor
        assert other.scenario.seed != base.seed
        assert scenario_fingerprint(other.scenario) != (
            scenario_fingerprint(base)
        )

    def test_expansion_is_deterministic(self):
        spec = _tiny(
            "g2", scales=(1.0, 2.0), bursts=(1.0, 3.0),
            corruptions=(0.0, 0.02),
        )
        a, b = expand(spec), expand(spec)
        assert [p.key for p in a] == [p.key for p in b]
        assert [p.scenario.seed for p in a] == [p.scenario.seed for p in b]
        assert [p.label for p in a] == [p.label for p in b]
        assert [p.index for p in a] == list(range(spec.n_points))

    def test_scale_transforms_fleet_rates_only(self):
        spec = _tiny("g3", scales=(1.0, 2.0))
        base, scaled = (p.scenario for p in expand(spec))
        assert scaled.rates.dbe_mtbf_hours == base.rates.dbe_mtbf_hours / 2
        assert scaled.rates.otb_rate_before_fix_per_hour == (
            2 * base.rates.otb_rate_before_fix_per_hour
        )
        assert scaled.rates.xid31_rate_per_hour == (
            2 * base.rates.xid31_rate_per_hour
        )
        assert scaled.rates.xid57_expected_total == (
            2 * base.rates.xid57_expected_total
        )
        # per-card SBE physics is not a fleet rate
        assert scaled.rates.sbe_rate_per_proneness_hour == (
            base.rates.sbe_rate_per_proneness_hour
        )
        assert expand(spec)[1].n_nodes == 2 * 18_688

    def test_burst_and_category_multipliers(self):
        spec = _tiny(
            "g4",
            rates=(RateMultipliers(), RateMultipliers(sbe=3.0)),
            bursts=(1.0, 2.0),
        )
        points = expand(spec)
        base = points[0].scenario.rates
        burst = points[1].scenario.rates  # burst=2, rates baseline
        assert burst.sbe_burst_rate_per_sqrt_proneness_hour == (
            2 * base.sbe_burst_rate_per_sqrt_proneness_hour
        )
        assert burst.sbe_rate_per_proneness_hour == (
            base.sbe_rate_per_proneness_hour
        )
        sbe3 = points[2].scenario.rates  # sbe*3, burst baseline
        assert sbe3.sbe_rate_per_proneness_hour == (
            3 * base.sbe_rate_per_proneness_hour
        )

    def test_window_axis_clamps_scenario(self):
        spec = _tiny("g5", days=3.0, windows=(None, 1.5))
        base, windowed = (p.scenario for p in expand(spec))
        assert windowed.end == base.start + 1.5 * DAY
        assert windowed.workload.end_time == windowed.end
        assert base.start <= windowed.jobsnap_deployed_at <= windowed.end
        windowed.validate()

    def test_point_keys_unique(self):
        spec = _tiny(
            "g6", scales=(1.0, 2.0), rates=(
                RateMultipliers(), RateMultipliers(dbe=2.0),
            ), corruptions=(0.0, 0.01),
        )
        keys = [p.key for p in expand(spec)]
        assert len(set(keys)) == len(keys) == 8


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


def _spec12(name="twelve"):
    """A 12-point sweep small enough for CI: 3 scales x 2 rate
    multipliers x 2 burst levels over a 3-day window."""
    return _tiny(
        name,
        scales=(1.0, 2.0, 3.0),
        rates=(RateMultipliers(), RateMultipliers(dbe=2.0)),
        bursts=(1.0, 2.0),
    )


class TestEngine:
    def test_sharded_cold_then_warm_rerun(self, store):
        spec = _spec12()
        cold = run_sweep(spec, store, n_workers=2)
        assert not cold.resumed
        assert len(cold.points) == 12
        assert cold.n_computed == 12
        assert [p.index for p in cold.points] == list(range(12))
        assert len(cold.table["rows"]) == 12
        assert cold.table["anchor_index"] == 0

        # resume: every journaled point verifies against the store
        warm = run_sweep(spec, store, resume=True)
        assert warm.resumed
        assert warm.n_verified == 12 and warm.n_computed == 0
        assert warm.table_sha256 == cold.table_sha256

        # journal gone, store intact: summaries reused byte-for-byte
        os.unlink(cold.journal_path)
        rerun = run_sweep(spec, store, n_workers=2)
        assert not rerun.resumed
        assert all(p.warm for p in rerun.points)
        assert rerun.table_sha256 == cold.table_sha256

        table, payload = load_sweep_table(spec, store)
        assert table == cold.table
        import hashlib

        assert hashlib.sha256(payload).hexdigest() == cold.table_sha256

    def test_corrupted_summary_recomputed_on_resume(self, store):
        from repro.sweep.engine import summary_key

        spec = _tiny("heal", scales=(1.0, 2.0))
        cold = run_sweep(spec, store)
        victim = expand(spec)[1]
        path = store._path(summary_key(victim.key))
        path.write_bytes(path.read_bytes()[: 40])  # torn container
        healed = run_sweep(spec, store, resume=True)
        actions = {p.index: p.action for p in healed.points}
        assert actions[0] == "verified"
        assert actions[1] == "recomputed"
        assert healed.table_sha256 == cold.table_sha256

    def test_availability_section_requires_flag(self, store):
        plain = _tiny("avail-off")
        truth = _tiny("avail-on", availability=True)
        a = run_sweep(plain, store)
        b = run_sweep(truth, store)
        # ground truth is folded into the summary address: no collision
        assert expand(plain)[0].key != expand(truth)[0].key
        assert a.table["rows"][0]["availability"] is None
        avail = b.table["rows"][0]["availability"]
        assert 0.0 < avail["availability"] <= 1.0
        assert avail["n_outages"] >= 0
        assert "mttr_hours_by_cause" in avail

    def test_corruption_axis_degrades_observables(self, store):
        spec = _tiny("corr", corruptions=(0.0, 0.2))
        report = run_sweep(spec, store)
        clean, dirty = report.table["rows"]
        assert clean["is_anchor"] and not dirty["is_anchor"]
        docs = [
            json.loads(
                store.get_bytes(f"sweep/{p.key}/summary")[0].decode()
            )
            for p in expand(spec)
        ]
        # the corrupted point's telemetry-derived figures moved
        assert docs[0]["figures"] != docs[1]["figures"]

    def test_resume_under_explicit_id_refuses_other_sweep(self, store):
        spec_a = _tiny("id-a")
        run_sweep(spec_a, store, run_id="pinned")
        with pytest.raises(JournalError, match="refusing to resume"):
            run_sweep(_tiny("id-b"), store, resume=True, run_id="pinned")

    def test_kill_at_point_barrier_resumes_byte_identical(
        self, store, tmp_path
    ):
        spec = _tiny("chaos", scales=(1.0, 2.0))
        cold = run_sweep(spec, store)  # reference table, shared store

        specfile = tmp_path / "spec.json"
        specfile.write_text(json.dumps(spec.to_doc()))
        cache = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env.pop("REPRO_CACHE_DIR", None)
        argv = [
            sys.executable, "-m", "repro", "sweep", "run",
            "--spec", str(specfile), "--cache-dir", str(cache), "--quiet",
        ]
        killed = subprocess.run(
            argv,
            env={**env, "REPRO_PROCFAULT": "kill:1"},
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert killed.returncode == -9, killed.stderr
        resumed = subprocess.run(
            argv + ["--resume"],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
            check=True,
        )
        sha = [
            line.split()[-1]
            for line in resumed.stdout.splitlines()
            if line.startswith("table sha256")
        ]
        assert sha == [cold.table_sha256]
        _table, payload = load_sweep_table(spec, ArtifactStore(cache))
        _ref, ref_payload = load_sweep_table(spec, store)
        assert payload == ref_payload

    def test_status_reporting(self, store):
        spec = _tiny("status-never-run", scales=(1.0, 4.0))
        before = sweep_status(spec, store)
        assert not before.exists and before.n_done == 0
        assert before.n_points == 2
        done = _tiny("heal", scales=(1.0, 2.0))  # ran above
        after = sweep_status(done, store)
        assert after.exists and after.complete
        assert after.n_done == after.n_points == 2


# ---------------------------------------------------------------------------
# reducer + CLI
# ---------------------------------------------------------------------------


class TestReducerAndCli:
    @staticmethod
    def _scale_row(index, scale, mtbf, **axes_overrides):
        axes = {
            "scale": scale,
            "rates": {"dbe": 1.0, "otb": 1.0, "sbe": 1.0, "xid": 1.0},
            "window_days": None,
            "burst": 1.0,
            "corruption": 0.0,
        }
        axes.update(axes_overrides)
        return {
            "index": index,
            "axes": axes,
            "n_nodes": round(18_688 * scale),
            "dbe_mtbf_hours": mtbf,
        }

    def test_scaling_projection_math(self):
        # Pure-function check of the paper's superposition argument:
        # MTBF(s) = MTBF(1)/s, restricted to scale-only rows.
        table = {
            "rows": [
                self._scale_row(0, 4.0, 40.0),
                self._scale_row(1, 1.0, 160.0),
                self._scale_row(2, 2.0, 81.0),
                self._scale_row(3, 2.0, 999.0, corruption=0.5),  # excluded
            ]
        }
        projection = scaling_projection(table)
        assert projection["titan_nodes"] == 18_688
        assert projection["anchor_mtbf_hours"] == 160.0
        assert [r["scale"] for r in projection["rows"]] == [1.0, 2.0, 4.0]
        assert [r["expected_mtbf_hours"] for r in projection["rows"]] == [
            160.0, 80.0, 40.0,
        ]
        assert projection["rows"][1]["dbe_mtbf_hours"] == 81.0

    def test_scaling_projection_from_live_table(self, store):
        spec = _spec12()  # summaries are warm from TestEngine
        report = run_sweep(spec, store, resume=True)
        projection = scaling_projection(report.table)
        assert projection["titan_nodes"] == 18_688
        assert [r["scale"] for r in projection["rows"]] == [1.0, 2.0, 3.0]
        assert projection["rows"][0]["n_nodes"] == 18_688
        anchor = projection["rows"][0]
        # a 3-day smoke window may legitimately see zero DBEs
        assert anchor["expected_mtbf_hours"] == anchor["dbe_mtbf_hours"]

    def test_renderers_and_csv(self, store, tmp_path):
        spec = _spec12()
        table, _payload = load_sweep_table(spec, store)
        text = render_sensitivity(table)
        assert "anchor" in text and "scale=3,dbe*2,burst=2" in text
        chart = render_projection(scaling_projection(table))
        assert "*titan*" in chart
        csv_path = write_table_csv(tmp_path / "t.csv", table)
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 1 + 12
        assert lines[0].startswith("index,label,scale")

    def test_cli_run_status_report(self, store, tmp_path, capsys):
        from repro.cli import main

        spec = _tiny("cli", scales=(1.0, 2.0))
        specfile = tmp_path / "spec.json"
        specfile.write_text(json.dumps(spec.to_doc()))
        common = ["--spec", str(specfile), "--cache-dir", str(store.root)]

        assert main(["sweep", "run", *common, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "cold sweep" in out and "table sha256" in out

        assert main(["sweep", "status", *common]) == 0
        assert "2/2 point(s) journaled, complete" in capsys.readouterr().out

        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "table.json"
        assert main([
            "sweep", "report", *common,
            "--csv", str(csv_path), "--out", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "sensitivity table" in out and "scaling projection" in out
        assert csv_path.exists()
        table, payload = load_sweep_table(spec, store)
        assert json_path.read_bytes() == payload

    def test_cli_requires_a_store(self, capsys):
        from repro.cli import main

        assert main(["sweep", "run", "--no-cache"]) == 2
        assert "artifact store" in capsys.readouterr().err

    def test_cli_report_before_run_fails_cleanly(self, store, capsys):
        from repro.cli import main

        assert main([
            "sweep", "report", "--spec", "/nonexistent.json",
            "--cache-dir", str(store.root),
        ]) == 2
        assert "cannot read sweep spec" in capsys.readouterr().err
        assert main([
            "sweep", "report", "--preset", "scaling",
            "--cache-dir", str(store.root),
        ]) == 1
        assert "no sensitivity table" in capsys.readouterr().err
