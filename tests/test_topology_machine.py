"""Tests for the TitanMachine model."""

import re

import numpy as np
import pytest

from repro.topology.machine import (
    N_COMPUTE_NODES,
    N_SERVICE_NODES,
    TitanMachine,
)


@pytest.fixture(scope="module")
def machine():
    return TitanMachine()


def test_counts(machine):
    assert machine.n_gpus == 18_688
    assert N_COMPUTE_NODES + N_SERVICE_NODES == 19_200
    assert machine.n_cabinets == 200


def test_coordinate_arrays_shapes(machine):
    for arr in (machine.row, machine.col, machine.cage, machine.slot, machine.node):
        assert arr.shape == (18_688,)


def test_coordinate_ranges(machine):
    assert machine.row.min() == 0 and machine.row.max() == 24
    assert machine.col.min() == 0 and machine.col.max() == 7
    assert set(np.unique(machine.cage)) == {0, 1, 2}


def test_gpu_position_roundtrip(machine):
    gpus = np.arange(machine.n_gpus)
    pos = machine.gpu_position(gpus)
    assert np.array_equal(machine.position_gpu(pos), gpus)


def test_service_positions_have_no_gpu(machine):
    service = np.flatnonzero(machine.is_service_position(np.arange(19_200)))
    assert service.size == 512
    assert np.all(machine.position_gpu(service) == -1)


def test_cname_roundtrip(machine):
    for gpu in [0, 1, 500, 9000, 18_687]:
        assert machine.gpu_from_cname(machine.cname(gpu)) == gpu


def test_gpu_from_cname_rejects_service_node(machine):
    # Cabinet 0 cage 0 slot 0 is a service blade by construction.
    with pytest.raises(ValueError):
        machine.gpu_from_cname("c0-0c0s0n0")


def test_location_matches_arrays(machine):
    gpu = 1234
    loc = machine.location(gpu)
    assert loc.row == machine.row[gpu]
    assert loc.col == machine.col[gpu]
    assert loc.cage == machine.cage[gpu]


def test_cabinet_grid_total(machine):
    counts = np.ones(machine.n_gpus, dtype=np.int64)
    grid = machine.cabinet_grid(counts)
    assert grid.shape == (25, 8)
    assert grid.sum() == machine.n_gpus
    # service blades removed 4 nodes each from the first 128 cabinets
    assert grid.flat[0] == 92
    assert grid.flat[199] == 96


def test_cabinet_grid_validates_shape(machine):
    with pytest.raises(ValueError):
        machine.cabinet_grid(np.ones(100))


def test_cage_totals(machine):
    counts = np.ones(machine.n_gpus, dtype=np.int64)
    totals = machine.cage_totals(counts)
    assert totals.sum() == machine.n_gpus
    # service blades all live in cage 0, so cage 0 has fewer GPUs
    assert totals[0] == totals[1] - 512
    assert totals[1] == totals[2]


def test_cage_totals_validates_shape(machine):
    with pytest.raises(ValueError):
        machine.cage_totals(np.ones(5))


def test_allocation_rank_is_permutation(machine):
    assert np.array_equal(
        np.sort(machine.allocation_rank), np.arange(machine.n_gpus)
    )
    # order and rank are mutually inverse
    assert np.array_equal(
        machine.allocation_rank[machine.allocation_order], np.arange(machine.n_gpus)
    )


def test_allocation_order_starts_in_row_zero(machine):
    first = machine.allocation_order[:500]
    assert np.all(machine.row[first] == 0)


def test_cname_table_matches_reference(machine):
    table = machine.cname_table()
    assert len(table) == machine.n_gpus
    # Memoized table vs per-call reference formatting, sampled across
    # the whole machine (every cabinet is hit at this stride).
    for gpu in range(0, machine.n_gpus, 61):
        assert table[gpu] == machine.cname_reference(gpu)
    assert table[machine.n_gpus - 1] == machine.cname_reference(
        machine.n_gpus - 1
    )


def test_cname_table_is_cached(machine):
    assert machine.cname_table() is machine.cname_table()


def test_gpu_index_map_inverts_cname_table(machine):
    gmap = machine.gpu_index_map()
    assert len(gmap) == machine.n_gpus
    for gpu in range(0, machine.n_gpus, 101):
        assert gmap[machine.cname(gpu)] == gpu


def test_gpu_from_cname_matches_reference(machine):
    canonical = machine.cname(9000)
    assert machine.gpu_from_cname(canonical) == machine.gpu_from_cname_reference(
        canonical
    )
    # Non-canonical spellings (zero-padded fields) miss the memoized
    # map but must still resolve through the parsing fallback.
    padded = re.sub(r"\d+", lambda m: m.group(0).zfill(3), canonical)
    assert machine.gpu_from_cname(padded) == 9000
    assert machine.gpu_from_cname_reference(padded) == 9000


def test_gpu_from_cname_reference_rejects_service_node(machine):
    with pytest.raises(ValueError):
        machine.gpu_from_cname_reference("c0-0c0s0n0")


def test_allocation_order_alternates_rows(machine):
    """The rows visited by ascending allocation order follow the folded
    sequence 0, 2, 4, ..."""
    rows_in_order = machine.row[machine.allocation_order]
    # np.unique on a stable first-occurrence basis:
    _, first_idx = np.unique(rows_in_order, return_index=True)
    visit_order = rows_in_order[np.sort(first_idx)]
    assert visit_order[0] == 0
    assert visit_order[1] == 2
    assert visit_order[2] == 4
