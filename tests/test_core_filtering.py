"""Tests for parent/child event filtering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import (
    dedup_by_card,
    first_of_each_card,
    sequential_dedup,
    split_parents_children,
)
from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType


def make_log(times, gpus=None, jobs=None, etype=ErrorType.GRAPHICS_ENGINE_EXCEPTION):
    b = EventLogBuilder()
    for i, t in enumerate(times):
        b.add(
            float(t),
            int(gpus[i]) if gpus is not None else i % 5,
            etype,
            job=int(jobs[i]) if jobs is not None else -1,
        )
    return b.freeze().sorted_by_time()


class TestSequentialDedup:
    def test_five_second_window(self):
        # burst of echoes at t=0..4, then a new parent at t=100
        log = make_log([0.0, 1.0, 2.0, 3.0, 100.0])
        result = sequential_dedup(log, 5.0)
        assert result.n_kept == 2
        assert result.kept.time.tolist() == [0.0, 100.0]
        assert result.n_dropped == 3

    def test_window_resets_on_kept_event(self):
        # events every 3 s: with a 5 s window, keep every other one
        log = make_log([0.0, 3.0, 6.0, 9.0, 12.0])
        result = sequential_dedup(log, 5.0)
        assert result.kept.time.tolist() == [0.0, 6.0, 12.0]

    def test_zero_window_keeps_all(self):
        log = make_log([0.0, 0.1, 0.2])
        assert sequential_dedup(log, 0.0).n_kept == 3

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            sequential_dedup(make_log([0.0]), -1.0)

    def test_unsorted_rejected(self):
        b = EventLogBuilder()
        b.add(10.0, 0, ErrorType.DBE)
        b.add(5.0, 0, ErrorType.DBE)
        with pytest.raises(ValueError):
            sequential_dedup(b.freeze(), 5.0)

    def test_per_job_mode(self):
        # two jobs interleaved: global filter would suppress job B's event
        log = make_log([0.0, 1.0, 2.0], jobs=[7, 8, 7])
        result = sequential_dedup(log, 5.0, per_job=True)
        assert result.n_kept == 2
        assert set(result.kept.job.tolist()) == {7, 8}

    def test_per_job_keeps_untagged(self):
        log = make_log([0.0, 1.0], jobs=[-1, -1])
        assert sequential_dedup(log, 5.0, per_job=True).n_kept == 2

    def test_split_halves_partition(self):
        log = make_log([0.0, 1.0, 50.0, 51.0])
        parents, children = split_parents_children(log, 5.0)
        assert len(parents) + len(children) == len(log)
        assert parents.time.tolist() == [0.0, 50.0]
        assert children.time.tolist() == [1.0, 51.0]

    def test_idempotent(self):
        """Filtering an already-filtered stream changes nothing."""
        log = make_log(np.sort(np.random.default_rng(0).uniform(0, 1e4, 200)))
        once = sequential_dedup(log, 5.0).kept
        twice = sequential_dedup(once, 5.0).kept
        assert np.array_equal(once.time, twice.time)

    @given(
        times=st.lists(
            st.floats(0, 1e5, allow_nan=False), min_size=1, max_size=80
        ),
        window=st.floats(0.1, 1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_kept_gaps_exceed_window(self, times, window):
        log = make_log(sorted(times))
        kept = sequential_dedup(log, window).kept
        gaps = np.diff(kept.time)
        assert np.all(gaps >= window)
        # first event is always kept
        assert kept.time[0] == min(times)


class TestDedupByCard:
    def test_one_per_card(self):
        log = make_log([0.0, 1.0, 2.0, 3.0], gpus=[5, 5, 6, 5])
        result = dedup_by_card(log)
        assert result.n_kept == 2
        assert result.kept.gpu.tolist() == [5, 6]
        # the *first* event of each card survives
        assert result.kept.time.tolist() == [0.0, 2.0]

    def test_shorthand(self):
        log = make_log([0.0, 1.0], gpus=[1, 1])
        assert len(first_of_each_card(log)) == 1

    def test_empty(self):
        from repro.errors.event import EventLog

        assert dedup_by_card(EventLog.empty()).n_kept == 0
