"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

#: Every analysis subcommand shares the common flag set (--seed,
#: --days/--full, --cache-dir, --no-cache).
ANALYSIS_COMMANDS = (
    "simulate",
    "figures",
    "observations",
    "fleet-health",
    "calibration",
    "degradation",
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.seed == 20131001
        assert not args.full

    def test_figures_outdir(self, tmp_path):
        args = build_parser().parse_args(
            ["figures", "--outdir", str(tmp_path)]
        )
        assert args.outdir == tmp_path

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_corrupt_defaults(self, tmp_path):
        args = build_parser().parse_args(["corrupt", str(tmp_path / "x.log")])
        assert args.rate == 0.01
        assert args.out is None
        assert args.outages == 0

    def test_degradation_defaults(self):
        args = build_parser().parse_args(["degradation"])
        assert args.fail_level is None
        assert args.budget == 0.05

    def test_simulate_chaos_rate_default_off(self):
        args = build_parser().parse_args(["simulate"])
        assert args.chaos_rate == 0.0


class TestCommands:
    """Each command runs end-to-end on a small window."""

    ARGS = ["--days", "30", "--seed", "77"]

    def test_simulate_writes_log(self, tmp_path, capsys):
        log = tmp_path / "console.log"
        nvsmi = tmp_path / "nvsmi.csv"
        rc = main(["simulate", *self.ARGS, "--log-out", str(log),
                   "--nvsmi-out", str(nvsmi)])
        assert rc == 0
        assert log.exists() and log.stat().st_size > 1000
        assert "GPU XID" in log.read_text()[:5000]
        header = nvsmi.read_text().splitlines()[0]
        assert header == "slot,sbe,dbe,retired_pages,temp_c"

    def test_figures_prints_tables(self, tmp_path, capsys):
        rc = main(["figures", *self.ARGS, "--outdir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GPU Error" in out
        assert "Fig. 2" in out
        assert (tmp_path / "fig02.csv").exists()

    def test_observations_scorecard(self, capsys):
        rc = main(["observations", "--days", "90", "--seed", "20131001"])
        out = capsys.readouterr().out
        assert "observation checks pass" in out
        assert rc == 0

    def test_fleet_health(self, capsys):
        rc = main(["fleet-health", *self.ARGS, "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ledger anomalies" in out
        assert out.count("c") > 3  # cnames printed


class TestChaosCommands:
    """The corruption/degradation commands run end to end."""

    def test_corrupt_is_deterministic(self, tmp_path, capsys):
        log = tmp_path / "console.log"
        rc = main(["simulate", "--days", "10", "--seed", "77",
                   "--log-out", str(log)])
        assert rc == 0
        rc = main(["corrupt", str(log), "--rate", "0.05", "--seed", "5"])
        assert rc == 0
        first = (tmp_path / "console.log.corrupt").read_text()
        again = tmp_path / "again.log"
        rc = main(["corrupt", str(log), "--rate", "0.05", "--seed", "5",
                   "--out", str(again)])
        assert rc == 0
        assert again.read_text() == first  # byte-identical replay
        assert first != log.read_text()
        out = capsys.readouterr().out
        assert "corrupted" in out

    def test_corrupt_missing_file(self, tmp_path, capsys):
        rc = main(["corrupt", str(tmp_path / "nope.log")])
        assert rc == 2

    def test_simulate_chaos_rate(self, tmp_path, capsys):
        log = tmp_path / "chaos.log"
        rc = main(["simulate", "--days", "10", "--seed", "77",
                   "--chaos-rate", "0.02", "--log-out", str(log)])
        assert rc == 0
        assert "chaos: corrupted" in capsys.readouterr().out
        assert log.exists()

    def test_degradation_sweep(self, capsys):
        rc = main(["degradation", "--days", "20", "--seed", "77",
                   "--levels", "0,0.01", "--fail-level", "0.01"])
        out = capsys.readouterr().out
        assert "scorecard stable" in out
        assert "flips" in out
        assert rc == 0


class TestCalibrationCommand:
    def test_calibration_passes(self, capsys):
        rc = main(["calibration", "--days", "45", "--seed", "20131001"])
        out = capsys.readouterr().out
        assert "calibration checks pass" in out
        assert rc == 0


class TestCacheFlags:
    """Every analysis subcommand takes --seed/--cache-dir consistently."""

    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_seed_and_cache_dir_accepted(self, command, tmp_path):
        args = build_parser().parse_args(
            [command, "--seed", "5", "--cache-dir", str(tmp_path)]
        )
        assert args.seed == 5
        assert args.cache_dir == tmp_path
        assert not args.no_cache

    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_no_cache_accepted(self, command):
        args = build_parser().parse_args([command, "--no-cache"])
        assert args.no_cache
        assert args.cache_dir is None

    def test_observations_warm_run_identical(self, tmp_path, capsys):
        # rc is data-dependent on a short window (nonzero when a check
        # fails); the contract is cold and warm agree *exactly*.
        argv = ["observations", "--days", "30", "--seed", "77",
                "--cache-dir", str(tmp_path / "store")]
        rc_cold = main(argv)
        cold = capsys.readouterr().out
        assert "cache: miss (simulated, persisted)" in cold
        rc_warm = main(argv)
        warm = capsys.readouterr().out
        assert "cache: hit (warm)" in warm
        assert rc_warm == rc_cold

        def analysis(text):
            return [l for l in text.splitlines()
                    if not l.startswith("cache:")]

        assert analysis(warm) == analysis(cold)

    def test_no_cache_wins_over_env(self, tmp_path, capsys, monkeypatch):
        envstore = tmp_path / "envstore"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(envstore))
        main(["observations", "--days", "30", "--seed", "77", "--no-cache"])
        assert "cache:" not in capsys.readouterr().out
        assert not envstore.exists()

    def test_env_var_enables_cache(self, tmp_path, capsys, monkeypatch):
        envstore = tmp_path / "envstore"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(envstore))
        main(["observations", "--days", "30", "--seed", "77"])
        assert "cache: miss" in capsys.readouterr().out
        assert envstore.exists()

    def test_ground_truth_run_warms_store_for_analysis(self, tmp_path,
                                                       capsys):
        """fleet-health always simulates (ground truth) but persists the
        observable layers, so a later observables-only run is warm."""
        store = str(tmp_path / "store")
        rc = main(["fleet-health", "--days", "30", "--seed", "77",
                   "--cache-dir", store, "--top", "3"])
        assert rc == 0
        assert "miss (simulated, persisted)" in capsys.readouterr().out
        main(["observations", "--days", "30", "--seed", "77",
              "--cache-dir", store])
        assert "cache: hit (warm)" in capsys.readouterr().out


class TestCacheCommand:
    """python -m repro cache {info,clear,evict} end to end."""

    def _populate(self, tmp_path):
        store = str(tmp_path / "store")
        rc = main(["simulate", "--days", "20", "--seed", "77",
                   "--cache-dir", store,
                   "--log-out", str(tmp_path / "c.log")])
        assert rc == 0
        return store

    def test_info_empty_store(self, tmp_path, capsys):
        rc = main(["cache", "info", "--cache-dir", str(tmp_path), "--json"])
        assert rc == 0
        info = json.loads(capsys.readouterr().out)
        assert info["n_artifacts"] == 0
        assert info["datasets"] == []

    def test_info_clear_roundtrip(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", store, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["n_artifacts"] == 5  # the five dataset layers
        assert len(info["datasets"]) == 1
        assert info["total_bytes"] > 0
        assert main(["cache", "clear", "--cache-dir", store, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 5
        assert main(["cache", "info", "--cache-dir", store, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["n_artifacts"] == 0

    def test_info_human_readable(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", store]) == 0
        out = capsys.readouterr().out
        assert "artifacts    5" in out
        assert "datasets     1" in out

    def test_evict_requires_budget(self, tmp_path, capsys):
        rc = main(["cache", "evict", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "requires --max-mb" in capsys.readouterr().out

    def test_evict_to_zero(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        capsys.readouterr()
        rc = main(["cache", "evict", "--cache-dir", store,
                   "--max-mb", "0", "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert len(out["evicted"]) == 5
        assert out["total_bytes"] == 0

    def test_cache_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])
