"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.seed == 20131001
        assert not args.full

    def test_figures_outdir(self, tmp_path):
        args = build_parser().parse_args(
            ["figures", "--outdir", str(tmp_path)]
        )
        assert args.outdir == tmp_path

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    """Each command runs end-to-end on a small window."""

    ARGS = ["--days", "30", "--seed", "77"]

    def test_simulate_writes_log(self, tmp_path, capsys):
        log = tmp_path / "console.log"
        nvsmi = tmp_path / "nvsmi.csv"
        rc = main(["simulate", *self.ARGS, "--log-out", str(log),
                   "--nvsmi-out", str(nvsmi)])
        assert rc == 0
        assert log.exists() and log.stat().st_size > 1000
        assert "GPU XID" in log.read_text()[:5000]
        header = nvsmi.read_text().splitlines()[0]
        assert header == "slot,sbe,dbe,retired_pages,temp_c"

    def test_figures_prints_tables(self, tmp_path, capsys):
        rc = main(["figures", *self.ARGS, "--outdir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GPU Error" in out
        assert "Fig. 2" in out
        assert (tmp_path / "fig02.csv").exists()

    def test_observations_scorecard(self, capsys):
        rc = main(["observations", "--days", "90", "--seed", "20131001"])
        out = capsys.readouterr().out
        assert "observation checks pass" in out
        assert rc == 0

    def test_fleet_health(self, capsys):
        rc = main(["fleet-health", *self.ARGS, "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ledger anomalies" in out
        assert out.count("c") > 3  # cnames printed


class TestCalibrationCommand:
    def test_calibration_passes(self, capsys):
        rc = main(["calibration", "--days", "45", "--seed", "20131001"])
        out = capsys.readouterr().out
        assert "calibration checks pass" in out
        assert rc == 0
