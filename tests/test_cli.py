"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.seed == 20131001
        assert not args.full

    def test_figures_outdir(self, tmp_path):
        args = build_parser().parse_args(
            ["figures", "--outdir", str(tmp_path)]
        )
        assert args.outdir == tmp_path

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_corrupt_defaults(self, tmp_path):
        args = build_parser().parse_args(["corrupt", str(tmp_path / "x.log")])
        assert args.rate == 0.01
        assert args.out is None
        assert args.outages == 0

    def test_degradation_defaults(self):
        args = build_parser().parse_args(["degradation"])
        assert args.fail_level is None
        assert args.budget == 0.05

    def test_simulate_chaos_rate_default_off(self):
        args = build_parser().parse_args(["simulate"])
        assert args.chaos_rate == 0.0


class TestCommands:
    """Each command runs end-to-end on a small window."""

    ARGS = ["--days", "30", "--seed", "77"]

    def test_simulate_writes_log(self, tmp_path, capsys):
        log = tmp_path / "console.log"
        nvsmi = tmp_path / "nvsmi.csv"
        rc = main(["simulate", *self.ARGS, "--log-out", str(log),
                   "--nvsmi-out", str(nvsmi)])
        assert rc == 0
        assert log.exists() and log.stat().st_size > 1000
        assert "GPU XID" in log.read_text()[:5000]
        header = nvsmi.read_text().splitlines()[0]
        assert header == "slot,sbe,dbe,retired_pages,temp_c"

    def test_figures_prints_tables(self, tmp_path, capsys):
        rc = main(["figures", *self.ARGS, "--outdir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GPU Error" in out
        assert "Fig. 2" in out
        assert (tmp_path / "fig02.csv").exists()

    def test_observations_scorecard(self, capsys):
        rc = main(["observations", "--days", "90", "--seed", "20131001"])
        out = capsys.readouterr().out
        assert "observation checks pass" in out
        assert rc == 0

    def test_fleet_health(self, capsys):
        rc = main(["fleet-health", *self.ARGS, "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ledger anomalies" in out
        assert out.count("c") > 3  # cnames printed


class TestChaosCommands:
    """The corruption/degradation commands run end to end."""

    def test_corrupt_is_deterministic(self, tmp_path, capsys):
        log = tmp_path / "console.log"
        rc = main(["simulate", "--days", "10", "--seed", "77",
                   "--log-out", str(log)])
        assert rc == 0
        rc = main(["corrupt", str(log), "--rate", "0.05", "--seed", "5"])
        assert rc == 0
        first = (tmp_path / "console.log.corrupt").read_text()
        again = tmp_path / "again.log"
        rc = main(["corrupt", str(log), "--rate", "0.05", "--seed", "5",
                   "--out", str(again)])
        assert rc == 0
        assert again.read_text() == first  # byte-identical replay
        assert first != log.read_text()
        out = capsys.readouterr().out
        assert "corrupted" in out

    def test_corrupt_missing_file(self, tmp_path, capsys):
        rc = main(["corrupt", str(tmp_path / "nope.log")])
        assert rc == 2

    def test_simulate_chaos_rate(self, tmp_path, capsys):
        log = tmp_path / "chaos.log"
        rc = main(["simulate", "--days", "10", "--seed", "77",
                   "--chaos-rate", "0.02", "--log-out", str(log)])
        assert rc == 0
        assert "chaos: corrupted" in capsys.readouterr().out
        assert log.exists()

    def test_degradation_sweep(self, capsys):
        rc = main(["degradation", "--days", "20", "--seed", "77",
                   "--levels", "0,0.01", "--fail-level", "0.01"])
        out = capsys.readouterr().out
        assert "scorecard stable" in out
        assert "flips" in out
        assert rc == 0


class TestCalibrationCommand:
    def test_calibration_passes(self, capsys):
        rc = main(["calibration", "--days", "45", "--seed", "20131001"])
        out = capsys.readouterr().out
        assert "calibration checks pass" in out
        assert rc == 0
