"""Tests for the monthly operations report."""

import numpy as np
import pytest

from repro.core.opsreport import build_monthly_report
from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.topology.machine import TitanMachine
from repro.units import month_bounds


@pytest.fixture(scope="module")
def machine():
    return TitanMachine()


def make_log(machine):
    b = EventLogBuilder()
    m0, _ = month_bounds(0)
    m1, _ = month_bounds(1)
    # month 0: one DBE, an echoed XID 13 burst (3 events, 1 incident)
    b.add(m0 + 100.0, 10, ErrorType.DBE)
    for dt in (0.0, 1.0, 2.0):
        b.add(m0 + 500.0 + dt, 20 + int(dt), ErrorType.GRAPHICS_ENGINE_EXCEPTION,
              job=5)
    # month 1: two DBEs, one OTB
    b.add(m1 + 50.0, 30, ErrorType.DBE)
    b.add(m1 + 5000.0, 31, ErrorType.DBE)
    b.add(m1 + 800.0, 32, ErrorType.OFF_THE_BUS)
    return b.freeze().sorted_by_time()


class TestBuildReport:
    def test_counts_are_incidents_not_events(self, machine):
        report = build_monthly_report(make_log(machine), machine, 0)
        assert report.incident_counts[ErrorType.DBE] == 1
        # three echoed XID 13 lines collapse to one incident
        assert report.incident_counts[ErrorType.GRAPHICS_ENGINE_EXCEPTION] == 1
        assert report.total_incidents() == 2

    def test_month_over_month_delta(self, machine):
        report = build_monthly_report(make_log(machine), machine, 1)
        assert report.incident_counts[ErrorType.DBE] == 2
        assert report.delta(ErrorType.DBE) == 1  # 2 this month vs 1 before
        assert report.delta(ErrorType.OFF_THE_BUS) == 1

    def test_first_month_has_no_previous(self, machine):
        report = build_monthly_report(make_log(machine), machine, 0)
        assert report.previous_counts == {}
        assert report.delta(ErrorType.DBE) == 1

    def test_hardware_itemized_in_time_order(self, machine):
        report = build_monthly_report(make_log(machine), machine, 1)
        kinds = [etype for _, etype, _ in report.hardware_incidents]
        assert kinds.count(ErrorType.DBE) == 2
        assert kinds.count(ErrorType.OFF_THE_BUS) == 1
        times = [t for *_, t in report.hardware_incidents]
        assert times == sorted(times)
        # cnames resolve to real nodes
        cname = report.hardware_incidents[0][0]
        assert machine.gpu_from_cname(cname) in (30, 31, 32)

    def test_top_cabinets(self, machine):
        report = build_monthly_report(make_log(machine), machine, 0)
        assert report.top_cabinets
        row, col, events = report.top_cabinets[0]
        assert events >= 1

    def test_watchlist_from_sbe_totals(self, machine):
        totals = np.zeros(machine.n_gpus, dtype=np.int64)
        totals[100] = 500
        totals[200] = 100
        report = build_monthly_report(
            make_log(machine), machine, 0, sbe_totals=totals
        )
        assert report.sbe_watchlist[0] == (machine.cname(100), 500)
        assert len(report.sbe_watchlist) == 2

    def test_render_contains_key_lines(self, machine):
        totals = np.zeros(machine.n_gpus, dtype=np.int64)
        totals[100] = 7
        report = build_monthly_report(
            make_log(machine), machine, 1, sbe_totals=totals
        )
        text = report.render()
        assert "Jul'13" in text
        assert "48" in text  # DBE XID in the table
        assert "Hardware incidents:" in text
        assert "SBE watchlist" in text
        assert "+1" in text  # the DBE delta

    def test_quiet_month(self, machine):
        report = build_monthly_report(make_log(machine), machine, 5)
        assert report.total_incidents() == 0
        assert report.hardware_incidents == []
        assert "report" in report.render()


class TestOnSimulatedData:
    def test_reports_over_study(self, smoke_dataset):
        ds = smoke_dataset
        log = ds.parsed_events
        report = build_monthly_report(
            log, ds.machine, 0, sbe_totals=ds.nvsmi_table["sbe_total"]
        )
        assert report.total_incidents() > 0
        text = report.render()
        assert "Jun'13" in text
        # incident counts are far below raw line counts (echo collapse)
        raw_lines = len(log.in_window(*__import__(
            "repro.units", fromlist=["month_bounds"]
        ).month_bounds(0)))
        assert report.total_incidents() < raw_lines
