"""Tests for the follow-probability heatmap and retirement-delay analysis."""

import numpy as np
import pytest

from repro.core.heatmap import DEFAULT_HEATMAP_TYPES, follow_probability_matrix
from repro.core.retirement import retirement_delay_analysis
from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.units import HOUR, MINUTE


def build(events):
    b = EventLogBuilder()
    for t, gpu, etype in events:
        b.add(float(t), gpu, etype)
    return b.freeze().sorted_by_time()


class TestFollowMatrix:
    def test_simple_follow(self):
        log = build([
            (0.0, 1, ErrorType.DBE),
            (10.0, 1, ErrorType.PREEMPTIVE_CLEANUP),
            (1000.0, 2, ErrorType.DBE),  # no follower
        ])
        fm = follow_probability_matrix(log, window_s=300.0)
        assert fm.value(ErrorType.DBE, ErrorType.PREEMPTIVE_CLEANUP) == 0.5
        # cleanup at t=10; the next DBE is 990 s later, outside the window
        assert fm.value(ErrorType.PREEMPTIVE_CLEANUP, ErrorType.DBE) == 0.0

    def test_follow_window_boundary(self):
        log = build([
            (0.0, 1, ErrorType.DBE),
            (300.0, 1, ErrorType.GPU_STOPPED),  # exactly at window edge
        ])
        fm = follow_probability_matrix(log, window_s=300.0)
        assert fm.value(ErrorType.DBE, ErrorType.GPU_STOPPED) == 1.0

    def test_diagonal_excludes_self(self):
        log = build([(0.0, 1, ErrorType.DBE)])
        fm = follow_probability_matrix(log, window_s=300.0)
        assert fm.value(ErrorType.DBE, ErrorType.DBE) == 0.0

    def test_diagonal_same_type_repeats(self):
        log = build([
            (0.0, 1, ErrorType.GRAPHICS_ENGINE_EXCEPTION),
            (1.0, 2, ErrorType.GRAPHICS_ENGINE_EXCEPTION),
            (2.0, 3, ErrorType.GRAPHICS_ENGINE_EXCEPTION),
        ])
        fm = follow_probability_matrix(log, window_s=300.0)
        # first two are each followed by another 13; last is not
        assert fm.value(
            ErrorType.GRAPHICS_ENGINE_EXCEPTION, ErrorType.GRAPHICS_ENGINE_EXCEPTION
        ) == pytest.approx(2 / 3)

    def test_without_same_type(self):
        log = build([
            (0.0, 1, ErrorType.GRAPHICS_ENGINE_EXCEPTION),
            (1.0, 2, ErrorType.GRAPHICS_ENGINE_EXCEPTION),
        ])
        fm = follow_probability_matrix(log, window_s=300.0).without_same_type()
        assert fm.value(
            ErrorType.GRAPHICS_ENGINE_EXCEPTION, ErrorType.GRAPHICS_ENGINE_EXCEPTION
        ) == 0.0

    def test_counts_and_labels(self):
        log = build([(0.0, 1, ErrorType.DBE)])
        fm = follow_probability_matrix(log)
        assert fm.types == DEFAULT_HEATMAP_TYPES
        i = fm.types.index(ErrorType.DBE)
        assert fm.counts[i] == 1
        assert "48" in fm.labels()
        assert "OFF_THE_BUS" in fm.labels()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            follow_probability_matrix(build([(0.0, 1, ErrorType.DBE)]), window_s=0.0)

    def test_values_are_probabilities(self):
        rng = np.random.default_rng(3)
        events = [
            (float(t), int(rng.integers(10)), ErrorType.GPU_STOPPED)
            for t in rng.uniform(0, 1e6, 200)
        ]
        fm = follow_probability_matrix(build(events))
        assert np.all(fm.matrix >= 0.0) and np.all(fm.matrix <= 1.0)


class TestRetirementDelay:
    def test_dbe_triggered_bucket(self):
        log = build([
            (0.0, 1, ErrorType.DBE),
            (2 * MINUTE, 1, ErrorType.ECC_PAGE_RETIREMENT),
        ])
        report = retirement_delay_analysis(log, active_from=0.0)
        assert report.n_within_10min == 1
        assert report.n_beyond_6h == 0

    def test_double_sbe_bucket(self):
        log = build([
            (0.0, 1, ErrorType.DBE),
            (10 * HOUR, 2, ErrorType.ECC_PAGE_RETIREMENT),
        ])
        report = retirement_delay_analysis(log, active_from=0.0)
        assert report.n_beyond_6h == 1

    def test_middle_bucket(self):
        log = build([
            (0.0, 1, ErrorType.DBE),
            (1 * HOUR, 2, ErrorType.ECC_PAGE_RETIREMENT),
        ])
        report = retirement_delay_analysis(log, active_from=0.0)
        assert report.n_10min_to_6h == 1

    def test_orphan_retirement(self):
        log = build([(5.0, 1, ErrorType.ECC_PAGE_RETIREMENT)])
        report = retirement_delay_analysis(log, active_from=0.0)
        assert report.n_retirements_without_preceding_dbe == 1
        assert report.n_retirements == 1

    def test_pre_rollout_dbes_ignored(self):
        log = build([
            (0.0, 1, ErrorType.DBE),  # before rollout
            (100.0, 2, ErrorType.ECC_PAGE_RETIREMENT),
        ])
        report = retirement_delay_analysis(log, active_from=50.0)
        assert report.n_retirements_without_preceding_dbe == 1
        assert report.delays_s.size == 0

    def test_gap_pairs(self):
        log = build([
            (0.0, 1, ErrorType.DBE),
            (1000.0, 2, ErrorType.DBE),  # no retirement between -> gap pair
            (1500.0, 2, ErrorType.ECC_PAGE_RETIREMENT),
            (2000.0, 3, ErrorType.DBE),  # retirement between -> not a gap
        ])
        report = retirement_delay_analysis(log, active_from=0.0)
        assert report.n_dbe_pairs_without_retirement == 1

    def test_histogram(self):
        log = build([
            (0.0, 1, ErrorType.DBE),
            (60.0, 1, ErrorType.ECC_PAGE_RETIREMENT),
            (7 * HOUR, 2, ErrorType.ECC_PAGE_RETIREMENT),
        ])
        report = retirement_delay_analysis(log, active_from=0.0)
        edges = np.array([0.0, 10 * MINUTE, 6 * HOUR, 1e9])
        assert report.histogram(edges).tolist() == [1, 0, 1]
