"""Tests for repro.cache: keys, serde, store durability, pipeline.

The contract under test is the one docs/PERFORMANCE.md documents:

* **key stability** — the content address is a pure function of
  ``(scenario configuration, seed, pipeline epoch)``; any perturbation
  of any axis produces a fresh key (hypothesis-checked);
* **corruption safety** — a truncated, garbled or checksum-broken
  artifact degrades to a *miss* (recompute), never a wrong answer;
* **atomicity** — concurrent writers/readers of one key never observe
  a torn container (two-process check);
* **incremental engine** — warm loads reproduce the cold dataset's
  observable artifacts exactly and never expose ground truth.
"""

import dataclasses
import json
import multiprocessing as mp
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.cache import (
    ArtifactStore,
    CachedDataset,
    GroundTruthUnavailable,
    PIPELINE_EPOCH,
    canonical_encode,
    canonical_json,
    dataset_key,
    has_dataset,
    load_dataset,
    load_or_simulate,
    persist_dataset,
    scenario_fingerprint,
)
from repro.cache import serde, sweep_point_key
from repro.cache.store import _MAGIC
from repro.sim import Scenario
from repro.sweep import RateMultipliers, SweepSpec, expand, preset


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------


class TestCanonicalEncoding:
    def test_float_bit_exact(self):
        assert canonical_json(0.1 + 0.2) != canonical_json(0.3)
        assert canonical_json(-0.0) != canonical_json(0.0)
        assert canonical_json(1.0) == canonical_json(1.0)

    def test_dict_order_insensitive(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_numpy_round_trip(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert canonical_json(a) == canonical_json(b)
        assert canonical_json(a) != canonical_json(a.astype(np.float32))

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_encoding_is_stable_text(self):
        # Pin the canonical form itself: a silent format change would
        # orphan every existing cache entry without an epoch bump.
        assert canonical_json(1.5) == '["f","0x1.8000000000000p+0"]'


class TestKeys:
    def test_same_scenario_same_key(self):
        a = Scenario.smoke(seed=7)
        b = Scenario.smoke(seed=7)
        assert a is not b
        assert dataset_key(a) == dataset_key(b)

    def test_seed_excluded_from_fingerprint(self):
        assert scenario_fingerprint(Scenario.smoke(seed=1)) == (
            scenario_fingerprint(Scenario.smoke(seed=2))
        )
        assert dataset_key(Scenario.smoke(seed=1)) != (
            dataset_key(Scenario.smoke(seed=2))
        )

    def test_epoch_changes_key(self):
        sc = Scenario.smoke()
        assert dataset_key(sc, epoch=PIPELINE_EPOCH) != (
            dataset_key(sc, epoch=PIPELINE_EPOCH + 1)
        )

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        days=st.floats(min_value=1.0, max_value=600.0,
                       allow_nan=False, allow_infinity=False),
        folded=st.booleans(),
    )
    def test_key_pure_function_of_inputs(self, seed, days, folded):
        base = Scenario.smoke(seed=seed, days=days).evolve(
            folded_torus=folded
        )
        again = Scenario.smoke(seed=seed, days=days).evolve(
            folded_torus=folded
        )
        assert dataset_key(base) == dataset_key(again)
        # Every axis perturbation must move the key.
        perturbed = [
            base.evolve(seed=seed + 1),
            base.evolve(folded_torus=not folded),
            base.evolve(end=base.end + 1.0),
            base.evolve(name=base.name + "x"),
        ]
        keys = {dataset_key(p) for p in perturbed}
        assert dataset_key(base) not in keys
        assert len(keys) == len(perturbed)

    @settings(max_examples=40, deadline=None)
    @given(
        mtbf=st.floats(min_value=10.0, max_value=1e4,
                       allow_nan=False, allow_infinity=False),
    )
    def test_nested_rate_field_perturbs_key(self, mtbf):
        base = Scenario.smoke()
        changed = base.evolve(
            rates=dataclasses.replace(base.rates, dbe_mtbf_hours=mtbf)
        )
        same = dataset_key(changed) == dataset_key(base)
        assert same == (mtbf == base.rates.dbe_mtbf_hours)


class TestSweepPointKeys:
    """The sweep-point content address: injective, pure, process-stable."""

    def test_axis_flags_fold_into_key(self):
        sc = Scenario.smoke(seed=3)
        keys = {
            sweep_point_key(sc),
            sweep_point_key(sc, corruption=0.01),
            sweep_point_key(sc, ground_truth=True),
            sweep_point_key(sc, corruption=0.01, ground_truth=True),
            sweep_point_key(sc, epoch=PIPELINE_EPOCH + 1),
        }
        assert len(keys) == 5
        # purity: a freshly built equal scenario maps to the same key
        assert sweep_point_key(Scenario.smoke(seed=3)) == sweep_point_key(sc)

    def test_corruption_level_is_bit_exact(self):
        sc = Scenario.smoke()
        assert sweep_point_key(sc, corruption=0.1 + 0.2) != (
            sweep_point_key(sc, corruption=0.3)
        )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scales=st.lists(
            st.floats(min_value=0.25, max_value=8.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=3, unique=True,
        ),
        dbe=st.floats(min_value=0.5, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
        bursts=st.lists(
            st.floats(min_value=0.5, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=2, unique=True,
        ),
        corruptions=st.lists(
            st.floats(min_value=0.0, max_value=0.2,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=2, unique=True,
        ),
        ground_truth=st.booleans(),
    )
    def test_keys_injective_across_the_grid(
        self, seed, scales, dbe, bursts, corruptions, ground_truth
    ):
        assume(dbe != 1.0)
        spec = SweepSpec(
            name="h",
            base="smoke",
            seed=seed,
            days=5.0,
            scales=tuple(scales),
            rates=(RateMultipliers(), RateMultipliers(dbe=dbe)),
            bursts=tuple(bursts),
            corruptions=tuple(corruptions),
            availability=ground_truth,
        )
        points = expand(spec)
        keys = [p.key for p in points]
        # distinct grid points never collide on one summary address...
        assert len(set(keys)) == len(keys)
        # ...and re-expanding the same spec reproduces them exactly.
        assert [p.key for p in expand(spec)] == keys

    def test_keys_stable_across_processes(self):
        points = expand(preset("smoke"))
        here = [p.key for p in points]
        src_root = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        code = (
            "from repro.sweep import expand, preset\n"
            "print('\\n'.join(p.key for p in expand(preset('smoke'))))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert proc.stdout.split() == here


# ---------------------------------------------------------------------------
# serde
# ---------------------------------------------------------------------------


class TestSerde:
    @pytest.mark.parametrize(
        "obj, kind",
        [
            ("console line one\nline two\n", "text"),
            ({"a": [1, 2], "b": "x"}, "json"),
            ({"x": np.arange(5), "y": np.ones((2, 3))}, "npz"),
            (((1, 2), {"k": np.float64(3.5)}), "pickle"),
        ],
    )
    def test_round_trip(self, obj, kind):
        decoded = serde.decode(serde.encode(obj, kind), kind)
        if kind == "npz":
            assert set(decoded) == set(obj)
            for name in obj:
                np.testing.assert_array_equal(decoded[name], obj[name])
        else:
            assert decoded == obj

    def test_unknown_kind_rejected(self):
        with pytest.raises(serde.SerdeError):
            serde.encode("x", "parquet")
        with pytest.raises(serde.SerdeError):
            serde.decode(b"x", "parquet")

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(serde.SerdeError):
            serde.encode(123, "text")
        with pytest.raises(serde.SerdeError):
            serde.encode({"a": [1]}, "npz")

    def test_garbled_payload_raises(self):
        with pytest.raises(serde.SerdeError):
            serde.decode(b"\x00garbage\xff", "text")


# ---------------------------------------------------------------------------
# store durability
# ---------------------------------------------------------------------------


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("abc/layer/console", "hello\n", "text")
        assert store.get("abc/layer/console") == "hello\n"
        assert store.stats.writes == 1
        assert store.stats.hits == 1

    def test_miss_counts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("nope") is None
        assert store.stats.misses == 1

    def test_bad_keys_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for key in ("", "../escape", "a//b", ".hidden", "a/./b", "x" * 600):
            with pytest.raises(ValueError):
                store.put(key, "x", "text")

    @pytest.mark.parametrize(
        "damage",
        ["truncate", "garble_payload", "garble_header", "bad_magic", "empty"],
    )
    def test_corruption_degrades_to_miss(self, tmp_path, damage):
        store = ArtifactStore(tmp_path)
        path = store.put("k", {"v": 1}, "json")
        blob = path.read_bytes()
        if damage == "truncate":
            path.write_bytes(blob[: len(blob) // 2])
        elif damage == "garble_payload":
            path.write_bytes(blob[:-3] + b"\x00\x00\x00")
        elif damage == "garble_header":
            cut = len(_MAGIC) + 4
            path.write_bytes(blob[:cut] + b"\xff" * 8 + blob[cut + 8:])
        elif damage == "bad_magic":
            path.write_bytes(b"XXXX" + blob[4:])
        else:
            path.write_bytes(b"")
        assert store.get("k") is None  # never a wrong answer
        assert store.stats.corrupt_dropped == 1
        assert not path.exists()  # dropped on detection
        # The slot is reusable immediately.
        store.put("k", {"v": 2}, "json")
        assert store.get("k") == {"v": 2}

    def test_stale_kind_after_code_change_is_miss(self, tmp_path):
        # A valid container whose payload no longer decodes under its
        # kind (e.g. pickle of a renamed class) must degrade to a miss.
        store = ArtifactStore(tmp_path)
        payload = serde.encode({"v": 1}, "json")
        store.put_bytes("k", payload[:-1] + b"{", "json")  # valid checksum,
        assert store.get("k") is None                      # broken codec
        assert store.stats.corrupt_dropped == 1

    def test_crashed_writer_staging_file_is_invisible(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", "x", "text")
        # Simulate a writer that died mid-stage: partial temp file.
        staging = store._objects / "k.art.tmp-99999-0"
        staging.write_bytes(b"partial garbage")
        assert store.get("k") == "x"
        assert [e.key for e in store.entries()] == ["k"]
        removed = store.clear()
        assert removed == 1  # staging files are not counted as artifacts
        assert not staging.exists()

    def test_atomic_replace_last_writer_wins(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(20):
            store.put("k", f"value-{i}", "text")
        assert store.get("k") == "value-19"
        # No staging debris left behind.
        assert not list(store._objects.glob("*tmp*"))

    def test_evict_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        paths = []
        for i in range(4):
            paths.append(store.put(f"k{i}", "x" * 1000, "text"))
        # Make mtimes strictly ordered without wall-clock sleeps.
        for i, path in enumerate(paths):
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        removed = store.evict(store.total_bytes() - 1)
        assert removed == ["k0"]
        assert store.evict(0) == ["k1", "k2", "k3"]
        assert store.total_bytes() == 0

    def test_info_inventory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("d1/layer/console", "text", "text")
        store.put("d1/fig/fig2", {"x": 1}, "pickle")
        store.put("d2/layer/nvsmi", {"a": np.ones(3)}, "npz")
        info = store.info()
        assert info.n_artifacts == 3
        assert set(info.datasets) == {"d1", "d2"}
        assert set(info.by_kind) == {"text", "pickle", "npz"}


class TestStoreHardening:
    """Races with concurrent processes and crashed-writer debris."""

    def test_open_sweeps_dead_writer_staging(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", "x", "text")
        # A staging file whose embedded pid is genuinely dead.
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait(timeout=60)
        stale = store._objects / f"k.art.tmp-{proc.pid}-0"
        stale.write_bytes(b"partial")
        reopened = ArtifactStore(tmp_path)
        assert not stale.exists()
        assert reopened.get("k") == "x"

    def test_open_keeps_live_writer_staging(self, tmp_path):
        store = ArtifactStore(tmp_path)
        # pid 1 is always alive (signal-0 gives EPERM, not ESRCH), and
        # our own pid is skipped outright: both must survive the sweep.
        own = store._objects / f"a.art.tmp-{os.getpid()}-0"
        init = store._objects / "b.art.tmp-1-0"
        own.write_bytes(b"inflight")
        init.write_bytes(b"inflight")
        ArtifactStore(tmp_path)
        assert own.exists() and init.exists()

    def test_open_sweeps_garbled_staging_name(self, tmp_path):
        store = ArtifactStore(tmp_path)
        junk = store._objects / "k.art.tmp-notapid"
        junk.write_bytes(b"junk")
        ArtifactStore(tmp_path)
        assert not junk.exists()

    def test_entries_ignores_foreign_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("d/k", "x", "text")
        (store._objects / "d" / "README").write_text("not an artifact")
        assert [e.key for e in store.entries()] == ["d/k"]

    def test_concurrent_clear_and_evict_never_raise(self, tmp_path):
        # Multiple actors tearing down the same store must race
        # gracefully: files vanishing between listing and stat/unlink
        # are "already done", never an error.
        import threading

        store = ArtifactStore(tmp_path)
        for i in range(120):
            store.put(f"d{i % 8}/k{i}", "x" * 256, "text")
        errors: list[Exception] = []

        def teardown(mode: str) -> None:
            try:
                other = ArtifactStore(tmp_path)
                if mode == "clear":
                    other.clear()
                else:
                    other.evict(0)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=teardown, args=(mode,))
            for mode in ("clear", "evict", "clear", "evict")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert ArtifactStore(tmp_path).entries() == []


# ---------------------------------------------------------------------------
# two-process atomicity
# ---------------------------------------------------------------------------


def _writer_proc(root: str, n: int) -> None:
    store = ArtifactStore(root)
    for i in range(n):
        store.put("contended", {"i": i, "pad": "x" * (1 + i % 977)}, "json")


def _reader_proc(root: str, n: int, out) -> None:
    store = ArtifactStore(root)
    bad = 0
    seen = 0
    for _ in range(n):
        value = store.get("contended")
        if value is None:
            continue
        seen += 1
        if not (isinstance(value, dict)
                and value.get("pad") == "x" * (1 + value["i"] % 977)):
            bad += 1
    out.put((seen, bad, store.stats.corrupt_dropped))


class TestConcurrency:
    def test_two_process_reader_never_sees_torn_write(self, tmp_path):
        ctx = mp.get_context("spawn")
        out = ctx.Queue()
        writer = ctx.Process(target=_writer_proc, args=(str(tmp_path), 300))
        reader = ctx.Process(
            target=_reader_proc, args=(str(tmp_path), 300, out)
        )
        writer.start()
        reader.start()
        seen, bad, corrupt = out.get(timeout=120)
        writer.join(timeout=120)
        reader.join(timeout=120)
        assert writer.exitcode == 0 and reader.exitcode == 0
        assert bad == 0
        assert corrupt == 0  # os.replace is atomic: old or new, never torn
        final = ArtifactStore(tmp_path).get("contended")
        assert final == {"i": 299, "pad": "x" * (1 + 299 % 977)}

    def test_two_process_distinct_keys_all_land(self, tmp_path):
        ctx = mp.get_context("spawn")
        procs = [
            ctx.Process(target=_writer_proc, args=(str(tmp_path), 50))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert ArtifactStore(tmp_path).get("contended")["i"] == 49


# ---------------------------------------------------------------------------
# the incremental engine
# ---------------------------------------------------------------------------

SMOKE = Scenario.smoke(days=15.0, seed=424242)


class TestPipeline:
    @pytest.fixture(scope="class")
    def warm_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cache")
        store = ArtifactStore(root)
        dataset, warm = load_or_simulate(SMOKE, store)
        assert not warm
        return store, dataset

    def test_cold_persists_all_layers(self, warm_store):
        store, _ = warm_store
        assert has_dataset(store, SMOKE)
        dkey = dataset_key(SMOKE)
        assert all(key.startswith(dkey) for key in store.keys())

    def test_warm_load_bit_identical_observables(self, warm_store):
        store, cold = warm_store
        warm = load_dataset(store, SMOKE)
        assert isinstance(warm, CachedDataset)
        assert warm.console_text == cold.console_text
        assert len(warm.parsed_events) == len(cold.parsed_events)
        np.testing.assert_array_equal(
            warm.parsed_events.time, cold.parsed_events.time
        )
        np.testing.assert_array_equal(
            warm.nvsmi_table["sbe_total"], cold.nvsmi_table["sbe_total"]
        )
        np.testing.assert_array_equal(warm.trace.user, cold.trace.user)
        assert len(warm.jobsnap_records) == len(cold.jobsnap_records)
        assert warm.parse_stats == cold.parse_stats

    def test_warm_flag_and_store_counters(self, warm_store):
        store, _ = warm_store
        before = store.stats.hits
        _, warm = load_or_simulate(SMOKE, store)
        assert warm
        assert store.stats.hits > before

    def test_ground_truth_never_cached(self, warm_store):
        store, _ = warm_store
        warm = load_dataset(store, SMOKE)
        for attr in ("events", "injection", "fleet", "nvsmi",
                     "node_state_log", "sbe_by_slot"):
            with pytest.raises(GroundTruthUnavailable):
                getattr(warm, attr)

    def test_require_ground_truth_simulates(self, warm_store):
        store, _ = warm_store
        dataset, warm = load_or_simulate(
            SMOKE, store, require_ground_truth=True
        )
        assert not warm
        assert len(dataset.events)  # ground truth present

    def test_corrupt_layer_forces_transparent_recompute(self, warm_store):
        store, cold = warm_store
        dkey = dataset_key(SMOKE)
        path = store._path(f"{dkey}/layer/parsed")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])  # torn write
        before = store.stats.corrupt_dropped
        dataset, warm = load_or_simulate(SMOKE, store)
        assert not warm  # miss, resimulated
        assert store.stats.corrupt_dropped == before + 1
        assert dataset.console_text == cold.console_text
        # ... and the recompute re-persisted the damaged layer.
        assert has_dataset(store, SMOKE)
        assert load_dataset(store, SMOKE) is not None

    def test_modified_stream_never_persisted(self, warm_store):
        store, cold = warm_store
        modified = cold.with_console_text("GPU XID garbage\n")
        assert modified.provenance == "modified"
        with pytest.raises(ValueError):
            persist_dataset(store, modified)

    def test_epoch_bump_is_a_clean_miss(self, warm_store):
        store, _ = warm_store
        assert load_dataset(store, SMOKE, epoch=PIPELINE_EPOCH + 1) is None


class TestStudyMemoization:
    def test_figure_store_round_trip(self, tmp_path, smoke_dataset):
        from repro.core import TitanStudy

        store = ArtifactStore(tmp_path)
        persist_dataset(store, smoke_dataset)
        cold = TitanStudy(smoke_dataset, store=store)
        fig2 = cold.fig2()
        assert cold.fig2() is fig2  # in-process memo
        warm_ds = load_dataset(store, smoke_dataset.scenario)
        warm = TitanStudy(warm_ds, store=store)
        from repro.core.golden import figure_digest

        assert figure_digest(warm.fig2()) == figure_digest(fig2)
        assert store.stats.hits > 0

    def test_non_default_args_bypass_cache(self, smoke_dataset, tmp_path):
        from repro.core import TitanStudy

        store = ArtifactStore(tmp_path)
        study = TitanStudy(smoke_dataset, store=store)
        fig10_wide = study.fig10(dedup_window_s=60.0)
        fig10_default = study.fig10()
        assert fig10_wide.total <= fig10_default.total
        # only the default call was persisted
        assert [k for k in store.keys() if "fig10" in k] == [
            f"{study.dataset_key}/fig/fig10"
        ]

    def test_modified_dataset_does_not_write_store(
        self, smoke_dataset, tmp_path
    ):
        from repro.core import TitanStudy

        store = ArtifactStore(tmp_path)
        modified = smoke_dataset.with_console_text(
            smoke_dataset.console_text
        )
        study = TitanStudy(modified, store=store)
        study.fig2()
        assert store.keys() == []  # nothing persisted for modified streams


class TestDegradationReuse:
    def test_sweep_reuses_cached_baseline(self, tmp_path):
        from repro.chaos import run_degradation

        store = ArtifactStore(tmp_path)
        sc = Scenario.smoke(days=15.0, seed=11)
        curve_cold = run_degradation(sc, levels=(0.0, 0.01), store=store)
        assert has_dataset(store, sc)
        hits_before = store.stats.hits
        curve_warm = run_degradation(sc, levels=(0.0, 0.01), store=store)
        assert store.stats.hits > hits_before
        assert [c.ok for c in curve_cold.baseline.checks] == (
            [c.ok for c in curve_warm.baseline.checks]
        )
        assert curve_cold.points[1].corrupt_fraction == (
            curve_warm.points[1].corrupt_fraction
        )


class TestReplicaCache:
    def test_replicas_warm_from_cache_dir(self, tmp_path):
        from repro.parallel import run_replicas

        sc = Scenario.smoke(days=15.0, seed=0)
        cold = run_replicas(sc, [5, 6], cache_dir=str(tmp_path))
        store = ArtifactStore(tmp_path)
        assert has_dataset(store, sc.evolve(seed=5))
        assert has_dataset(store, sc.evolve(seed=6))
        warm = run_replicas(sc, [5, 6], cache_dir=str(tmp_path))
        assert [r.statistics for r in cold] == [r.statistics for r in warm]

    def test_summarize_matches_headline_statistics(self, smoke_dataset):
        from repro.core import TitanStudy, headline_statistics
        from repro.parallel import summarize_dataset

        assert summarize_dataset(smoke_dataset) == headline_statistics(
            TitanStudy(smoke_dataset)
        )
