"""Crash- and hang-resilience tests for :mod:`repro.parallel.pool`.

Worker processes are killed or raise transient errors via sentinel
files (shared through the filesystem, since workers are separate
processes): the first attempt per item fails, every retry succeeds.
Deterministic failures must survive the retries and surface with a
clean traceback from the serial fallback.

The watchdog integration tests use the same sentinel pattern with
workers that block on an event that never fires: a transiently hung
worker must be SIGKILLed and its chunk retried; a deterministically
hung chunk must raise :class:`~repro.parallel.pool.ChunkTimeout`
instead of blocking the parent in the serial fallback.  The
deadline-vs-stalled *classification* itself is tested against a
:class:`~repro.supervise.watchdog.ManualClock` — hand-cranked time,
no sleeps, no scheduler races.
"""

import os
import threading
import time

import pytest

from repro.parallel.pool import ChunkTimeout, map_reduce, parallel_map
from repro.supervise.watchdog import ChunkHeartbeat, ChunkWatch, ManualClock

#: Far longer than any test timeout: a worker blocking this long is
#: "hung forever" unless the watchdog reclaims it.
_FOREVER_S = 600.0


def _block_forever():
    """Hang without polling: wait on an event nobody will ever set."""
    threading.Event().wait(_FOREVER_S)


def _double(x):
    return 2 * x


def _add(a, b):
    return a + b


def _flaky(item):
    """Raise on the first call per sentinel, succeed afterwards."""
    x, sentinel = item
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("1")
        raise RuntimeError("transient failure")
    return 2 * x


def _crash_once(item):
    """Die like an OOM-killed worker on the first call per sentinel."""
    x, sentinel = item
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("1")
        os._exit(17)
    return 2 * x


def _always_bad(x):
    raise ValueError(f"bad item {x}")


def _hang_once(item):
    """Hang forever on the first call per sentinel, succeed afterwards."""
    x, sentinel = item
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("1")
        _block_forever()
    return 2 * x


def _hang_always(item):
    """Hang forever whenever the marked item comes around."""
    x, _sentinel = item
    if x == 1:
        _block_forever()
    return 2 * x


def _second_item_hangs_once(item):
    """First item returns fast; the second hangs on the first attempt.

    Exercises the *stalled-heartbeat* detector: the chunk's heartbeat
    appears and advances once, then stops while the total runtime is
    still within any reasonable deadline.
    """
    x, sentinel = item
    if x % 2 == 1 and not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("1")
        _block_forever()
    return 2 * x


class TestRetry:
    def test_transient_exception_heals(self, tmp_path):
        items = [(i, str(tmp_path / f"s{i}")) for i in range(3)]
        out = parallel_map(_flaky, items, n_workers=2, max_retries=2)
        assert out == [0, 2, 4]

    def test_worker_crash_heals(self, tmp_path):
        items = [(i, str(tmp_path / f"c{i}")) for i in range(2)]
        out = parallel_map(_crash_once, items, n_workers=2, max_retries=2)
        assert out == [0, 2]

    def test_deterministic_error_surfaces(self):
        """After retries, the serial fallback re-raises cleanly."""
        with pytest.raises(ValueError, match="bad item"):
            parallel_map(_always_bad, [1, 2], n_workers=2, max_retries=1)

    def test_serial_fallback_heals_late_transient(self, tmp_path):
        # max_retries=0: the pool gets one shot, the serial fallback
        # must still rescue the chunk.
        items = [(i, str(tmp_path / f"f{i}")) for i in range(2)]
        out = parallel_map(_flaky, items, n_workers=2, max_retries=0)
        assert out == [0, 2]


class TestMapSemantics:
    def test_serial_path(self):
        assert parallel_map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_order_preserved_with_chunks(self):
        out = parallel_map(
            _double, list(range(7)), n_workers=2, chunksize=3
        )
        assert out == [2 * i for i in range(7)]

    def test_lambda_rejected_in_parallel(self):
        with pytest.raises(ValueError, match="work function"):
            parallel_map(lambda x: x, [1, 2], n_workers=2)

    def test_empty_input(self):
        assert parallel_map(_double, [], n_workers=4) == []


class TestWatchdog:
    """Hang detection: deadlines, stalled heartbeats, ChunkTimeout."""

    def test_hung_worker_killed_and_retried(self, tmp_path):
        items = [(i, str(tmp_path / f"h{i}")) for i in range(4)]
        out = parallel_map(
            _hang_once, items, n_workers=2, chunk_timeout_s=1.5
        )
        assert out == [0, 2, 4, 6]

    def test_deterministic_hang_raises_chunk_timeout(self, tmp_path):
        items = [(i, str(tmp_path / f"d{i}")) for i in range(3)]
        with pytest.raises(ChunkTimeout, match="hung"):
            parallel_map(
                _hang_always,
                items,
                n_workers=2,
                max_retries=0,
                chunk_timeout_s=1.0,
            )

    def test_stalled_heartbeat_killed_and_retried(self, tmp_path):
        # The chunk starts fine (item 0 beats), then stalls on item 1:
        # only the heartbeat detector can see this, and the retry heals.
        items = [(i, str(tmp_path / f"s{i}")) for i in range(2)]
        out = parallel_map(
            _second_item_hangs_once,
            items,
            n_workers=2,
            chunksize=2,
            heartbeat_timeout_s=1.0,
        )
        assert out == [0, 2]

    def test_backoff_capped(self, tmp_path):
        # backoff_s=30 with an aggressive cap must not sleep 30s.
        items = [(i, str(tmp_path / f"b{i}")) for i in range(2)]
        t0 = time.monotonic()
        out = parallel_map(
            _flaky,
            items,
            n_workers=2,
            max_retries=2,
            backoff_s=30.0,
            max_backoff_s=0.2,
        )
        assert out == [0, 2]
        assert time.monotonic() - t0 < 20.0


class TestWatchdogClassification:
    """Deadline-vs-stalled decisions against a hand-cranked clock.

    These replace the old wall-clock "steady but slow worker" test:
    instead of racing real 0.3 s sleeps against a 0.45 s heartbeat
    window (flaky under load), the clock is advanced explicitly and
    every classification is exact.
    """

    def _watch(self, tmp_path):
        hb = ChunkHeartbeat(tmp_path / "c.hb")
        clock = ManualClock()
        return hb, clock, ChunkWatch(tmp_path / "c.hb", clock=clock)

    def test_steady_progress_never_killed(self, tmp_path):
        # Each item takes longer than the heartbeat window would allow
        # for silence, but per-item beats keep arriving: total runtime
        # vastly exceeds the window, classification stays healthy.
        hb, clock, watch = self._watch(tmp_path)
        hb.start()
        for item in range(10):
            clock.advance(0.3)
            assert (
                watch.is_hung(heartbeat_timeout_s=0.45) is None
            ), f"killed at item {item}"
            hb.beat(item + 1)

    def test_silence_past_window_is_stalled(self, tmp_path):
        hb, clock, watch = self._watch(tmp_path)
        hb.start()
        assert watch.is_hung(heartbeat_timeout_s=0.45) is None
        clock.advance(0.45)  # exactly at the window: not yet hung
        assert watch.is_hung(heartbeat_timeout_s=0.45) is None
        clock.advance(0.001)  # strictly past it: stalled
        assert watch.is_hung(heartbeat_timeout_s=0.45) == "stalled"

    def test_progress_resets_the_stall_window(self, tmp_path):
        hb, clock, watch = self._watch(tmp_path)
        hb.start()
        watch.is_hung(heartbeat_timeout_s=1.0)
        clock.advance(0.9)
        hb.beat(1)
        assert watch.is_hung(heartbeat_timeout_s=1.0) is None
        clock.advance(0.9)  # 1.8s total, 0.9s since the beat
        assert watch.is_hung(heartbeat_timeout_s=1.0) is None
        clock.advance(0.2)  # 1.1s since the beat
        assert watch.is_hung(heartbeat_timeout_s=1.0) == "stalled"

    def test_progress_does_not_extend_the_deadline(self, tmp_path):
        hb, clock, watch = self._watch(tmp_path)
        hb.start()
        watch.is_hung(chunk_timeout_s=2.0)
        for item in range(4):
            clock.advance(0.6)
            hb.beat(item + 1)
        # 2.4s of steady progress: healthy by heartbeat, dead by deadline.
        assert watch.is_hung(chunk_timeout_s=2.0) == "deadline"

    def test_deadline_outranks_stall_when_both_exceeded(self, tmp_path):
        hb, clock, watch = self._watch(tmp_path)
        hb.start()
        watch.is_hung(chunk_timeout_s=1.0, heartbeat_timeout_s=1.0)
        clock.advance(5.0)
        assert (
            watch.is_hung(chunk_timeout_s=1.0, heartbeat_timeout_s=1.0)
            == "deadline"
        )

    def test_queued_chunk_never_hung(self, tmp_path):
        # No heartbeat file yet: the worker has not picked the chunk
        # up, so no amount of elapsed time means "hung".
        clock = ManualClock()
        watch = ChunkWatch(tmp_path / "missing.hb", clock=clock)
        clock.advance(1e9)
        assert watch.is_hung(chunk_timeout_s=0.001) is None

    def test_explicit_now_still_wins(self, tmp_path):
        # The pool passes its own monotonic reading; an injected clock
        # must not shadow an explicit ``now``.
        hb, clock, watch = self._watch(tmp_path)
        hb.start()
        watch.is_hung(100.0, chunk_timeout_s=5.0)
        clock.advance(1e6)  # ignored: explicit now is authoritative
        assert watch.is_hung(101.0, chunk_timeout_s=5.0) is None
        assert watch.is_hung(106.0, chunk_timeout_s=5.0) == "deadline"

    def test_manual_clock_is_monotonic(self):
        clock = ManualClock(start=7.0)
        assert clock() == 7.0
        assert clock.advance(1.5) == 8.5
        with pytest.raises(ValueError, match="backwards"):
            clock.advance(-0.1)


class TestMapReduce:
    def test_parallel_fold(self):
        assert map_reduce(_double, [1, 2, 3, 4], _add, n_workers=2) == 20

    def test_reducer_picklability_validated(self):
        with pytest.raises(ValueError, match="reduce function"):
            map_reduce(_double, [1, 2, 3], lambda a, b: a + b, n_workers=2)

    def test_lambda_reducer_fine_serially(self):
        assert map_reduce(_double, [1, 2, 3], lambda a, b: a + b) == 12

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            map_reduce(_double, [], _add)
