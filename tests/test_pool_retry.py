"""Crash-resilience tests for :mod:`repro.parallel.pool`.

Worker processes are killed or raise transient errors via sentinel
files (shared through the filesystem, since workers are separate
processes): the first attempt per item fails, every retry succeeds.
Deterministic failures must survive the retries and surface with a
clean traceback from the serial fallback.
"""

import os

import pytest

from repro.parallel.pool import map_reduce, parallel_map


def _double(x):
    return 2 * x


def _add(a, b):
    return a + b


def _flaky(item):
    """Raise on the first call per sentinel, succeed afterwards."""
    x, sentinel = item
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("1")
        raise RuntimeError("transient failure")
    return 2 * x


def _crash_once(item):
    """Die like an OOM-killed worker on the first call per sentinel."""
    x, sentinel = item
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("1")
        os._exit(17)
    return 2 * x


def _always_bad(x):
    raise ValueError(f"bad item {x}")


class TestRetry:
    def test_transient_exception_heals(self, tmp_path):
        items = [(i, str(tmp_path / f"s{i}")) for i in range(3)]
        out = parallel_map(_flaky, items, n_workers=2, max_retries=2)
        assert out == [0, 2, 4]

    def test_worker_crash_heals(self, tmp_path):
        items = [(i, str(tmp_path / f"c{i}")) for i in range(2)]
        out = parallel_map(_crash_once, items, n_workers=2, max_retries=2)
        assert out == [0, 2]

    def test_deterministic_error_surfaces(self):
        """After retries, the serial fallback re-raises cleanly."""
        with pytest.raises(ValueError, match="bad item"):
            parallel_map(_always_bad, [1, 2], n_workers=2, max_retries=1)

    def test_serial_fallback_heals_late_transient(self, tmp_path):
        # max_retries=0: the pool gets one shot, the serial fallback
        # must still rescue the chunk.
        items = [(i, str(tmp_path / f"f{i}")) for i in range(2)]
        out = parallel_map(_flaky, items, n_workers=2, max_retries=0)
        assert out == [0, 2]


class TestMapSemantics:
    def test_serial_path(self):
        assert parallel_map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_order_preserved_with_chunks(self):
        out = parallel_map(
            _double, list(range(7)), n_workers=2, chunksize=3
        )
        assert out == [2 * i for i in range(7)]

    def test_lambda_rejected_in_parallel(self):
        with pytest.raises(ValueError, match="work function"):
            parallel_map(lambda x: x, [1, 2], n_workers=2)

    def test_empty_input(self):
        assert parallel_map(_double, [], n_workers=4) == []


class TestMapReduce:
    def test_parallel_fold(self):
        assert map_reduce(_double, [1, 2, 3, 4], _add, n_workers=2) == 20

    def test_reducer_picklability_validated(self):
        with pytest.raises(ValueError, match="reduce function"):
            map_reduce(_double, [1, 2, 3], lambda a, b: a + b, n_workers=2)

    def test_lambda_reducer_fine_serially(self):
        assert map_reduce(_double, [1, 2, 3], lambda a, b: a + b) == 12

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            map_reduce(_double, [], _add)
