"""Tests for the repro.perf stage-timer registry and the profile CLI.

The registry lives outside the deterministic simulator subtree (it is
the one place allowed to touch the wall clock), so the key properties
are: disabled instrumentation is free and side-effect free, enabled
instrumentation accumulates, and ``python -m repro profile`` surfaces
the per-stage breakdown.
"""

import json

import pytest

from repro import perf
from repro.perf.timers import _NULL_SPAN, PerfRegistry


class TestRegistry:
    def test_disabled_stage_is_shared_noop(self):
        reg = PerfRegistry()
        assert reg.stage("x") is _NULL_SPAN
        assert reg.stage("y") is reg.stage("z")
        with reg.stage("x"):
            pass
        reg.count("lines", 100)
        assert reg.snapshot() == {"stages": {}, "counters": {}}

    def test_enabled_accumulates_seconds_and_calls(self):
        reg = PerfRegistry()
        reg.enable()
        for _ in range(3):
            with reg.stage("parse"):
                pass
        with reg.stage("render"):
            pass
        reg.count("lines", 10)
        reg.count("lines", 5)
        reg.count("events")
        snap = reg.snapshot()
        assert snap["stages"]["parse"]["calls"] == 3
        assert snap["stages"]["parse"]["seconds"] >= 0.0
        assert snap["stages"]["render"]["calls"] == 1
        assert snap["counters"] == {"events": 1, "lines": 15}

    def test_spans_nest(self):
        reg = PerfRegistry()
        reg.enable()
        with reg.stage("outer"):
            with reg.stage("inner"):
                pass
        snap = reg.snapshot()
        assert snap["stages"]["outer"]["calls"] == 1
        assert snap["stages"]["inner"]["calls"] == 1
        assert snap["stages"]["outer"]["seconds"] >= (
            snap["stages"]["inner"]["seconds"]
        )

    def test_exception_still_records(self):
        reg = PerfRegistry()
        reg.enable()
        with pytest.raises(RuntimeError):
            with reg.stage("boom"):
                raise RuntimeError("surfaces")
        assert reg.snapshot()["stages"]["boom"]["calls"] == 1

    def test_reset_clears(self):
        reg = PerfRegistry()
        reg.enable()
        with reg.stage("x"):
            pass
        reg.count("n", 2)
        reg.reset()
        assert reg.snapshot() == {"stages": {}, "counters": {}}
        assert reg.enabled  # reset clears data, not the switch

    def test_snapshot_is_sorted_and_detached(self):
        reg = PerfRegistry()
        reg.enable()
        for name in ("b", "a", "c"):
            with reg.stage(name):
                pass
        snap = reg.snapshot()
        assert list(snap["stages"]) == ["a", "b", "c"]
        snap["stages"]["a"]["calls"] = 99  # mutating the view is safe
        assert reg.snapshot()["stages"]["a"]["calls"] == 1


class TestModuleLevelRegistry:
    @pytest.fixture(autouse=True)
    def _clean_global(self):
        perf.disable()
        perf.reset()
        yield
        perf.disable()
        perf.reset()

    def test_disabled_by_default(self):
        assert not perf.is_enabled()
        with perf.stage("idle"):
            pass
        perf.count("idle", 7)
        assert perf.snapshot() == {"stages": {}, "counters": {}}

    def test_enable_disable_cycle(self):
        perf.enable()
        assert perf.is_enabled()
        with perf.stage("work"):
            pass
        perf.disable()
        with perf.stage("after"):
            pass
        snap = perf.snapshot()
        assert snap["stages"]["work"]["calls"] == 1
        assert "after" not in snap["stages"]


class TestProfileCli:
    def test_profile_smoke_json(self, capsys):
        from repro.cli import main

        rc = main(
            ["profile", "--days", "3", "--seed", "7", "--no-cache", "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["parse_workers"] == 0
        assert doc["wall_s"] > 0
        stages = doc["stages"]
        # The pipeline's load-bearing stages must all be present.
        for name in (
            "sim.workload",
            "sim.inject",
            "telemetry.render",
            "telemetry.parse",
        ):
            assert name in stages, name
            assert stages[name]["calls"] >= 1
        assert doc["counters"]["telemetry.lines"] > 0

    def test_profile_smoke_table(self, capsys):
        from repro.cli import main

        rc = main(["profile", "--days", "3", "--seed", "7", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry.parse" in out
        assert "total wall" in out
