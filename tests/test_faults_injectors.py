"""Tests for the hardware/software/SBE injectors and cascades.

These run on a short window with scaled-up rates so each assertion has
enough events to be stable, without paying for a full 21-month sim.
"""

import numpy as np
import pytest

from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.faults.cascade import CascadeModel
from repro.faults.hardware import HardwareInjector
from repro.faults.rates import RateConfig
from repro.faults.sbe import SbeInjector
from repro.faults.software import SoftwareInjector
from repro.gpu.fleet import GPUFleet
from repro.rng import RngTree
from repro.topology.machine import TitanMachine
from repro.topology.thermal import ThermalModel
from repro.units import DAY
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.lookup import JobLocator

WINDOW = 60 * DAY


@pytest.fixture(scope="module")
def env():
    tree = RngTree(99)
    machine = TitanMachine()
    fleet = GPUFleet(machine.n_gpus, tree.fresh_generator("fleet"))
    thermal = ThermalModel(machine.cage, tree.fresh_generator("thermal"))
    gen = WorkloadGenerator(
        WorkloadConfig(n_users=40, jobs_per_day=60.0, end_time=WINDOW),
        tree.fresh_generator("wl"),
    )
    trace = gen.generate()
    locator = JobLocator(trace, machine.allocation_rank)
    return tree, machine, fleet, thermal, gen, trace, locator


class TestHardwareInjector:
    def make(self, env, rates=None, name="hw"):
        tree, machine, fleet, thermal, *_ = env
        return HardwareInjector(
            machine, fleet, thermal,
            rates or RateConfig(),
            tree.fresh_generator(name),
        )

    def test_dbe_count_tracks_mtbf(self, env):
        # 10x rate for statistical stability over 60 days
        rates = RateConfig().evolve(dbe_mtbf_hours=16.0)
        injector = self.make(env, rates, "hw.mtbf")
        builder = EventLogBuilder()
        out = injector.inject_dbes(0.0, WINDOW, builder)
        expected = WINDOW / 3600 / 16.0
        assert out.n_dbe == pytest.approx(expected, rel=0.25)

    def test_dbe_structure_split(self, env):
        rates = RateConfig().evolve(dbe_mtbf_hours=2.0)  # many events
        injector = self.make(env, rates, "hw.split")
        builder = EventLogBuilder()
        injector.inject_dbes(0.0, WINDOW, builder)
        log = builder.freeze().of_type(ErrorType.DBE)
        from repro.errors.event import STRUCTURE_CODES
        from repro.gpu.k20x import MemoryStructure

        dev = np.count_nonzero(
            log.structure == STRUCTURE_CODES[MemoryStructure.DEVICE_MEMORY]
        )
        assert dev / len(log) == pytest.approx(0.86, abs=0.04)

    def test_dbe_cage_gradient(self, env):
        tree, machine, fleet, thermal, *_ = env
        rates = RateConfig().evolve(dbe_mtbf_hours=1.0)
        injector = self.make(env, rates, "hw.cage")
        builder = EventLogBuilder()
        injector.inject_dbes(0.0, WINDOW, builder)
        log = builder.freeze().of_type(ErrorType.DBE)
        cages = machine.cage[log.gpu]
        top = np.count_nonzero(cages == 2)
        bottom = np.count_nonzero(cages == 0)
        assert top > bottom * 1.2  # clear thermal skew

    def test_replacement_policy(self, env):
        tree, machine, fleet, thermal, *_ = env
        rates = RateConfig().evolve(dbe_mtbf_hours=1.0, dbe_repeat_boost=500.0)
        injector = self.make(env, rates, "hw.replace")
        builder = EventLogBuilder()
        out = injector.inject_dbes(0.0, WINDOW, builder)
        # huge repeat boost -> cards reach the threshold and get swapped
        assert len(out.replaced_slots) > 0
        from repro.gpu.card import CardState

        assert fleet.n_cards_in_state(CardState.HOT_SPARE) >= len(
            out.replaced_slots
        )

    def test_retirement_only_after_rollout(self, env):
        tree, machine, _, thermal, *_ = env
        rates = RateConfig().evolve(
            dbe_mtbf_hours=2.0, retirement_active_from=WINDOW / 2,
            retirement_log_probability=1.0,
        )
        # The fleet's per-card trackers must carry the same rollout time.
        fleet = GPUFleet(
            machine.n_gpus,
            tree.fresh_generator("fleet.rollout"),
            retirement_active_from=rates.retirement_active_from,
        )
        injector = HardwareInjector(
            machine, fleet, thermal, rates, tree.fresh_generator("hw.rollout")
        )
        builder = EventLogBuilder()
        injector.inject_dbes(0.0, WINDOW, builder)
        retired = builder.freeze().of_type(ErrorType.ECC_PAGE_RETIREMENT)
        assert len(retired) > 0
        assert retired.time.min() >= WINDOW / 2

    def test_otb_fix_quenches_stream(self, env):
        rates = RateConfig().evolve(otb_fix_time=WINDOW / 2)
        injector = self.make(env, rates, "hw.otb")
        builder = EventLogBuilder()
        n = injector.inject_off_the_bus(0.0, WINDOW, builder)
        log = builder.freeze()
        before = np.count_nonzero(log.time < WINDOW / 2)
        after = n - before
        assert before > 5 * max(after, 1)

    def test_otb_rarely_repeats_per_card(self, env):
        rates = RateConfig().evolve(otb_fix_time=None)
        injector = self.make(env, rates, "hw.otbrep")
        builder = EventLogBuilder()
        n = injector.inject_off_the_bus(0.0, WINDOW, builder)
        log = builder.freeze()
        assert n > 10
        # nearly every event lands on a distinct card
        assert log.unique_gpus().size >= 0.95 * n


class TestSoftwareInjector:
    def make(self, env, rates=None, name="sw"):
        tree, machine, fleet, thermal, gen, trace, locator = env
        return SoftwareInjector(
            machine, gen.users, rates or RateConfig(), tree.fresh_generator(name)
        )

    def test_app_errors_attach_to_jobs(self, env):
        *_, trace, locator = env
        injector = self.make(env, name="sw.jobs")
        builder = EventLogBuilder()
        counts = injector.inject_application(0.0, WINDOW, builder, locator)
        log = builder.freeze().of_type(ErrorType.GRAPHICS_ENGINE_EXCEPTION)
        assert counts["xid13"] > 0
        # every regular XID 13 carries a job id (bad-node ones may not)
        jobs = log.job[log.gpu != RateConfig().bad_xid13_gpu]
        assert np.all(jobs >= 0)

    def test_bad_node_fires_regardless(self, env):
        *_, locator = env
        rates = RateConfig().evolve(bad_xid13_rate_per_hour=0.05)
        injector = self.make(env, rates, "sw.bad")
        builder = EventLogBuilder()
        counts = injector.inject_application(0.0, WINDOW, builder, locator)
        assert counts["xid13_bad_node"] > 10
        log = builder.freeze()
        bad = log.select(log.gpu == rates.bad_xid13_gpu)
        assert len(bad) >= counts["xid13_bad_node"]

    def test_bad_node_disabled(self, env):
        *_, locator = env
        rates = RateConfig().evolve(bad_xid13_gpu=-1)
        injector = self.make(env, rates, "sw.nobad")
        builder = EventLogBuilder()
        counts = injector.inject_application(0.0, WINDOW, builder, locator)
        assert counts["xid13_bad_node"] == 0

    def test_driver_upgrade_swaps_mcu_halt_xid(self, env):
        *_, locator = env
        from repro.faults.rates import DRIVER_UPGRADE_TIME

        injector = self.make(env, name="sw.mcu")
        builder = EventLogBuilder()
        # window straddling the upgrade
        start = DRIVER_UPGRADE_TIME - 30 * DAY
        end = DRIVER_UPGRADE_TIME + 30 * DAY
        injector.inject_driver(start, end, builder, None)
        log = builder.freeze()
        old = log.of_type(ErrorType.MCU_HALT_OLD)
        new = log.of_type(ErrorType.MCU_HALT_NEW)
        if len(old):
            assert old.time.max() < DRIVER_UPGRADE_TIME
        if len(new):
            assert new.time.min() >= DRIVER_UPGRADE_TIME

    def test_xid42_never_emitted(self, env):
        injector = self.make(env, name="sw.42")
        builder = EventLogBuilder()
        counts = injector.inject_driver(0.0, WINDOW, builder, None)
        assert counts["xid42"] == 0

    def test_rare_streams_scale_with_expectation(self, env):
        rates = RateConfig().evolve(xid38_expected_total=300.0)
        injector = self.make(env, rates, "sw.rare")
        builder = EventLogBuilder()
        counts = injector.inject_driver(0.0, WINDOW, builder, None)
        assert counts["xid38"] == pytest.approx(300, rel=0.3)


class TestCascade:
    def test_echo_covers_job(self, env):
        tree, machine, fleet, thermal, gen, trace, locator = env
        builder = EventLogBuilder()
        # one synthetic parent on a real job
        job = int(np.argmax(trace.n_nodes))
        gpus = locator.job_gpus(job)
        t0 = float(trace.start[job] + 10.0)
        builder.add(t0, int(gpus[0]), ErrorType.GRAPHICS_ENGINE_EXCEPTION, job=job)
        rates = RateConfig().evolve(p_43_after_13=0.0, p_cleanup_after_crash=0.0,
                                    p_same_type_repeat=0.0)
        cascade = CascadeModel(rates, tree.fresh_generator("casc"))
        out = cascade.apply(builder.freeze(), locator).sorted_by_time()
        echoes = out.of_type(ErrorType.GRAPHICS_ENGINE_EXCEPTION)
        assert len(echoes) == gpus.size  # parent + one echo per other node
        assert set(echoes.gpu.tolist()) == set(gpus.tolist())
        # all within the 5-second window
        assert float(echoes.time.max() - t0) <= rates.job_echo_window_s + 1e-6

    def test_echo_children_point_at_parent(self, env):
        tree, *_, trace, locator = env
        builder = EventLogBuilder()
        job = int(np.argmax(trace.n_nodes > 10))
        gpus = locator.job_gpus(job)
        builder.add(float(trace.start[job] + 1), int(gpus[0]),
                    ErrorType.MEM_PAGE_FAULT, job=job)
        cascade = CascadeModel(RateConfig(), tree.fresh_generator("casc2"))
        out = cascade.apply(builder.freeze(), locator)
        children = out.select(out.parent >= 0)
        assert len(children) >= gpus.size - 1
        assert np.all(children.parent == 0)

    def test_dbe_spawns_cleanup(self, env):
        tree, *_ , locator = env
        rates = RateConfig().evolve(p_cleanup_after_dbe=1.0)
        builder = EventLogBuilder()
        builder.add(100.0, 5, ErrorType.DBE)
        cascade = CascadeModel(rates, tree.fresh_generator("casc3"))
        out = cascade.apply(builder.freeze(), None)
        cleanup = out.of_type(ErrorType.PREEMPTIVE_CLEANUP)
        assert len(cleanup) == 1
        assert int(cleanup.gpu[0]) == 5
        assert float(cleanup.time[0]) > 100.0

    def test_xid13_spawns_43(self, env):
        tree, *_ = env
        rates = RateConfig().evolve(
            p_43_after_13=1.0, p_cleanup_after_crash=0.0, p_same_type_repeat=0.0
        )
        builder = EventLogBuilder()
        builder.add(50.0, 7, ErrorType.GRAPHICS_ENGINE_EXCEPTION, job=-1)
        cascade = CascadeModel(rates, tree.fresh_generator("casc4"))
        out = cascade.apply(builder.freeze(), None)
        assert len(out.of_type(ErrorType.GPU_STOPPED)) == 1

    def test_isolated_types_spawn_nothing(self, env):
        tree, *_ = env
        builder = EventLogBuilder()
        builder.add(10.0, 3, ErrorType.DRIVER_FIRMWARE)
        builder.add(20.0, 4, ErrorType.OFF_THE_BUS)
        cascade = CascadeModel(RateConfig(), tree.fresh_generator("casc5"))
        out = cascade.apply(builder.freeze(), None)
        assert len(out) == 2  # parents only


class TestSbeInjector:
    def make(self, env, rates=None, name="sbe"):
        tree, machine, fleet, thermal, *_ = env
        return SbeInjector(
            machine, fleet, rates or RateConfig(),
            tree.fresh_generator(name), thermal,
        )

    def test_only_prone_cards_emit(self, env):
        tree, machine, fleet, thermal, gen, trace, locator = env
        injector = self.make(env, name="sbe.prone")
        builder = EventLogBuilder()
        out = injector.inject(trace, 0.0, WINDOW, builder, locator)
        emitting = np.flatnonzero(out.sbe_by_slot)
        assert emitting.size > 0
        assert np.all(fleet.sbe_proneness[emitting] > 0)

    def test_job_counts_bounded_by_slot_totals(self, env):
        *_, trace, locator = env
        injector = self.make(env, name="sbe.bounds")
        builder = EventLogBuilder()
        out = injector.inject(trace, 0.0, WINDOW, builder, locator)
        assert out.sbe_by_job.sum() <= out.sbe_by_slot.sum()
        assert out.sbe_by_job.shape == (len(trace),)

    def test_l2_dominates_structures(self, env):
        tree, machine, fleet, thermal, gen, trace, locator = env
        injector = self.make(env, name="sbe.l2")
        builder = EventLogBuilder()
        injector.inject(trace, 0.0, WINDOW, builder, locator)
        from repro.gpu.k20x import MemoryStructure

        l2 = dev = total = 0
        for slot in np.flatnonzero(fleet.sbe_proneness):
            rom = fleet.card_in_slot(int(slot)).inforom
            l2 += rom.sbe_counts.get(MemoryStructure.L2_CACHE, 0)
            dev += rom.sbe_counts.get(MemoryStructure.DEVICE_MEMORY, 0)
            total += rom.total_sbe
        if total:
            assert l2 / total > 0.5  # "most SBEs happen in the L2 cache"
            assert dev / total < 0.2

    def test_zero_noise_is_deterministic_mean(self, env):
        """With noise off, expected counts scale with proneness-hours."""
        tree, machine, fleet, thermal, gen, trace, locator = env
        rates = RateConfig().evolve(
            sbe_job_noise_sigma=0.0, sbe_user_noise_sigma=0.0
        )
        injector = self.make(env, rates, "sbe.mean")
        builder = EventLogBuilder()
        out = injector.inject(trace, 0.0, WINDOW, builder, locator)
        assert out.total > 0
