"""Tests for application-impact accounting."""

import numpy as np
import pytest

from repro.core.impact import application_impact
from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.units import HOUR
from repro.workload.jobs import JobTraceBuilder


def make_trace():
    b = JobTraceBuilder()
    # job 0: 100 nodes, 10 h; job 1: 10 nodes, 2 h
    b.add(user=0, submit=0.0, start=0.0, end=10 * HOUR, gpu_util=1.0,
          max_memory_gb=1.0, total_memory=1.0, n_apruns=1, runs=[(0, 100)])
    b.add(user=1, submit=0.0, start=0.0, end=2 * HOUR, gpu_util=1.0,
          max_memory_gb=1.0, total_memory=1.0, n_apruns=1, runs=[(100, 10)])
    return b.freeze()


def make_log(events):
    b = EventLogBuilder()
    for t, gpu, etype, job in events:
        b.add(t, gpu, etype, job=job)
    return b.freeze().sorted_by_time()


class TestImpact:
    def test_loss_capped_by_checkpoint_interval(self):
        trace = make_trace()
        # DBE 5 h into job 0: loss = 100 * (1 h cap + 0.1 restart)
        log = make_log([(5 * HOUR, 0, ErrorType.DBE, 0)])
        report = application_impact(log, trace)
        impact = report.per_class[ErrorType.DBE]
        assert impact.n_interruptions == 1
        assert impact.lost_node_hours == pytest.approx(100 * 1.1)
        assert impact.interrupted_node_hours == pytest.approx(1000.0)

    def test_early_crash_loses_less(self):
        trace = make_trace()
        # crash 12 min in: progress below the cap
        log = make_log([(0.2 * HOUR, 0, ErrorType.DBE, 0)])
        report = application_impact(log, trace)
        assert report.per_class[ErrorType.DBE].lost_node_hours == pytest.approx(
            100 * (0.2 + 0.1)
        )

    def test_echoes_counted_once(self):
        trace = make_trace()
        events = [(HOUR + i, i, ErrorType.GRAPHICS_ENGINE_EXCEPTION, 0)
                  for i in range(5)]  # 5 echoes within 5 s
        report = application_impact(make_log(events), trace)
        impact = report.per_class[ErrorType.GRAPHICS_ENGINE_EXCEPTION]
        assert impact.n_interruptions == 1

    def test_non_crashing_classes_free(self):
        trace = make_trace()
        log = make_log([
            (HOUR, 0, ErrorType.ECC_PAGE_RETIREMENT, 0),
            (2 * HOUR, 0, ErrorType.PREEMPTIVE_CLEANUP, 0),
        ])
        report = application_impact(log, trace)
        assert report.total_lost_node_hours == 0.0
        assert ErrorType.ECC_PAGE_RETIREMENT not in report.per_class

    def test_untagged_events_cost_nothing(self):
        trace = make_trace()
        log = make_log([(HOUR, 50, ErrorType.GPU_STOPPED, -1)])
        report = application_impact(log, trace)
        assert report.per_class[ErrorType.GPU_STOPPED].n_interruptions == 0

    def test_interruption_rate(self):
        trace = make_trace()
        log = make_log([
            (HOUR, 0, ErrorType.DBE, 0),
            (1.5 * HOUR, 100, ErrorType.OFF_THE_BUS, 1),
        ])
        report = application_impact(log, trace)
        assert report.n_interrupted_jobs == 2
        assert report.interruption_rate == 1.0
        assert report.lost_fraction > 0

    def test_ranked_classes(self):
        trace = make_trace()
        log = make_log([
            (5 * HOUR, 0, ErrorType.DBE, 0),  # 100-node job: expensive
            (HOUR, 100, ErrorType.GPU_STOPPED, 1),  # 10-node job: cheap
        ])
        ranked = application_impact(log, trace).ranked_classes()
        assert ranked[0].etype is ErrorType.DBE
        assert ranked[0].mean_loss_per_interruption > ranked[1].mean_loss_per_interruption

    def test_validation(self):
        trace = make_trace()
        log = make_log([(HOUR, 0, ErrorType.DBE, 0)])
        with pytest.raises(ValueError):
            application_impact(log, trace, checkpoint_interval_h=0.0)
        with pytest.raises(ValueError):
            application_impact(log, trace, restart_overhead_h=-1.0)

    def test_on_simulated_dataset(self, smoke_dataset):
        ds = smoke_dataset
        report = application_impact(ds.parsed_events, ds.trace)
        assert report.n_jobs == len(ds.trace)
        assert 0 < report.n_interrupted_jobs < report.n_jobs
        assert 0 < report.lost_fraction < 0.2  # interruptions are a tax,
        # not the bulk of the machine
        heaviest = report.ranked_classes()[0]
        assert heaviest.lost_node_hours > 0
