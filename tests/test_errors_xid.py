"""Tests for the XID catalog (Tables 1 & 2)."""

from repro.errors.xid import (
    Cause,
    ErrorType,
    by_xid,
    from_code,
    hardware_error_types,
    software_error_types,
    table1_rows,
    table2_rows,
)


def test_table1_membership():
    hw = set(hardware_error_types())
    for t in (
        ErrorType.SBE,
        ErrorType.DBE,
        ErrorType.OFF_THE_BUS,
        ErrorType.DISPLAY_ENGINE,
        ErrorType.VMEM_PROGRAMMING,
        ErrorType.VMEM_UNSTABLE,
        ErrorType.ECC_PAGE_RETIREMENT,
        ErrorType.VIDEO_PROCESSOR,
    ):
        assert t in hw


def test_table2_xids_match_paper():
    xids = sorted(t.xid for t in software_error_types())
    assert xids == [13, 31, 32, 38, 42, 43, 44, 45, 57, 58, 59, 62]


def test_key_xid_codes():
    assert ErrorType.DBE.xid == 48
    assert ErrorType.GRAPHICS_ENGINE_EXCEPTION.xid == 13
    assert ErrorType.GPU_STOPPED.xid == 43
    assert ErrorType.PREEMPTIVE_CLEANUP.xid == 45
    assert ErrorType.ECC_PAGE_RETIREMENT.xid == 63
    assert ErrorType.ECC_PAGE_RETIREMENT_FAILURE.xid == 64


def test_unnumbered_types():
    assert ErrorType.SBE.xid is None
    assert ErrorType.OFF_THE_BUS.xid is None


def test_crash_semantics():
    assert ErrorType.DBE.crashes  # SECDED always crashes on DBE
    assert not ErrorType.SBE.crashes
    assert ErrorType.OFF_THE_BUS.crashes  # host loses the GPU
    assert not ErrorType.ECC_PAGE_RETIREMENT.crashes
    assert not ErrorType.PREEMPTIVE_CLEANUP.crashes
    assert ErrorType.GRAPHICS_ENGINE_EXCEPTION.crashes


def test_dual_listed_types():
    # 57 and 58 appear in both tables
    for t in (ErrorType.VMEM_PROGRAMMING, ErrorType.VMEM_UNSTABLE):
        assert t.hardware and t.software


def test_by_xid():
    assert by_xid(48) == (ErrorType.DBE,)
    assert by_xid(13) == (ErrorType.GRAPHICS_ENGINE_EXCEPTION,)
    assert by_xid(999) == ()


def test_code_roundtrip():
    for t in ErrorType:
        assert from_code(t.code) is t


def test_codes_stable_and_unique():
    codes = [t.code for t in ErrorType]
    assert len(set(codes)) == len(codes)
    assert ErrorType.SBE.code == 0  # storage format stability
    assert ErrorType.DBE.code == 1


def test_xid13_causes_include_app_and_thermal():
    causes = ErrorType.GRAPHICS_ENGINE_EXCEPTION.causes
    assert Cause.USER_APP in causes
    assert Cause.THERMAL in causes
    # Observation 8: hardware can masquerade as XID 13
    assert Cause.HARDWARE in causes


def test_table1_rows_render():
    rows = dict(table1_rows())
    assert rows["Single Bit Error (corrected by the SECDED ECC)"] == "-"
    assert rows["ECC page retirement error"] == "63,64"
    assert rows["Off the Bus"] == "-"


def test_table2_rows_render():
    rows = table2_rows()
    assert ("Graphics Engine Exception", 13) in rows
    assert len(rows) == 12


def test_labels_nonempty():
    for t in ErrorType:
        assert t.label
