"""Tests for the cabinet thermal model."""

import numpy as np
import pytest

from repro.rng import RngTree
from repro.topology.machine import TitanMachine
from repro.topology.thermal import ThermalModel
from repro.units import fahrenheit_delta_to_celsius


@pytest.fixture(scope="module")
def machine():
    return TitanMachine()


def make_model(machine, **kw):
    return ThermalModel(machine.cage, RngTree(1).fresh_generator("thermal"), **kw)


def test_top_cage_hotter_by_about_10F(machine):
    model = make_model(machine)
    means = model.cage_means(utilization=0.5)
    delta = means[2] - means[0]
    assert delta == pytest.approx(fahrenheit_delta_to_celsius(10.5), abs=0.3)


def test_gradient_monotone(machine):
    means = make_model(machine).cage_means()
    assert means[0] < means[1] < means[2]


def test_utilization_raises_temperature(machine):
    model = make_model(machine)
    cold = model.temperature(0.0)
    hot = model.temperature(1.0)
    assert np.all(hot > cold)
    assert np.allclose(hot - cold, model.util_delta_c)


def test_utilization_clipped(machine):
    model = make_model(machine)
    assert np.array_equal(model.temperature(2.0), model.temperature(1.0))
    assert np.array_equal(model.temperature(-1.0), model.temperature(0.0))


def test_per_gpu_utilization_array(machine):
    model = make_model(machine)
    util = np.zeros(machine.n_gpus)
    util[0] = 1.0
    temps = model.temperature(util)
    idle = model.idle_temperature()
    assert temps[0] == pytest.approx(idle[0] + model.util_delta_c)
    assert temps[1] == pytest.approx(idle[1])


def test_card_offsets_deterministic(machine):
    a = make_model(machine).idle_temperature()
    b = make_model(machine).idle_temperature()
    assert np.array_equal(a, b)


def test_arrhenius_factor_mean_near_one(machine):
    factor = make_model(machine).arrhenius_factor(0.5)
    assert factor.mean() == pytest.approx(1.0, rel=0.1)
    assert np.all(factor > 0)


def test_arrhenius_top_cage_elevated(machine):
    model = make_model(machine)
    factor = model.arrhenius_factor(0.5)
    top = factor[machine.cage == 2].mean()
    bottom = factor[machine.cage == 0].mean()
    # ~5.6C at 10C doubling -> ~1.5x
    assert top / bottom == pytest.approx(2 ** (5.6 / 10), rel=0.1)


def test_disabled_model_is_flat(machine):
    model = make_model(machine, enabled=False)
    assert np.allclose(model.arrhenius_factor(0.5), 1.0)
    means = model.cage_means()
    assert means[2] - means[0] == pytest.approx(0.0, abs=1e-9)


def test_doubling_parameter(machine):
    model = make_model(machine)
    f10 = model.arrhenius_factor(0.5, doubling_c=10.0)
    f5 = model.arrhenius_factor(0.5, doubling_c=5.0)
    # smaller doubling constant -> more spread
    assert f5.std() > f10.std()
