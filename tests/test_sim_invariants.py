"""Deep integration invariants of the simulated dataset.

These cross-check the injectors against the workload: every job-tagged
event must physically fit its job (time inside the job's run, node
inside the job's allocation), retirement events must obey the driver
rollout, and the telemetry views must be mutually consistent.
"""

import numpy as np
import pytest

from repro.errors.xid import ErrorType


@pytest.fixture(scope="module")
def ds(smoke_dataset):
    return smoke_dataset


def test_job_tagged_events_fit_their_jobs(ds):
    """Sampled job-tagged events lie within the job's time window and on
    one of the job's allocated GPUs."""
    ev = ds.events
    tagged = np.flatnonzero(ev.job >= 0)
    rng = np.random.default_rng(0)
    sample = rng.choice(tagged, size=min(300, tagged.size), replace=False)
    echo = ds.scenario.rates.job_echo_window_s
    for i in sample:
        job = int(ev.job[i])
        t = float(ev.time[i])
        assert ds.trace.start[job] - 1e-6 <= t
        # children (echoes, cleanups, retries) may land shortly after
        # the crash ended the job's useful run but within bookkeeping
        assert t <= ds.trace.end[job] + echo + 600.0
        gpus = set(ds.locator.job_gpus(job).tolist())
        assert int(ev.gpu[i]) in gpus


def test_workload_driven_errors_always_tagged(ds):
    """XID 13/31 *parent* events ride on jobs by construction, so every
    one carries a job tag — except the bad node (Observation 8), which
    fires regardless of what (if anything) is running, and XID 43
    children it spawns."""
    ev = ds.events
    bad = ds.scenario.rates.bad_xid13_gpu
    for etype in (ErrorType.GRAPHICS_ENGINE_EXCEPTION, ErrorType.MEM_PAGE_FAULT):
        stream = ev.of_type(etype)
        untagged = stream.select(stream.job < 0)
        assert np.all(untagged.gpu == bad)


def test_echo_counts_match_allocation_sizes(ds):
    """Each echoed parent produces exactly n_nodes events for its job
    within the echo window."""
    ev = ds.events
    xid13 = ev.of_type(ErrorType.GRAPHICS_ENGINE_EXCEPTION)
    parents = xid13.select((xid13.parent < 0) & (xid13.job >= 0))
    rng = np.random.default_rng(1)
    bad = ds.scenario.rates.bad_xid13_gpu
    checked = 0
    for i in rng.permutation(len(parents)):
        job = int(parents.job[i])
        if int(parents.gpu[i]) == bad:
            continue
        t0 = float(parents.time[i])
        window = xid13.select(
            (xid13.job == job) & (xid13.time >= t0)
            & (xid13.time <= t0 + ds.scenario.rates.job_echo_window_s + 0.5)
        )
        # at least the full allocation reports (repeats may add more)
        assert len(window) >= int(ds.trace.n_nodes[job])
        checked += 1
        if checked >= 20:
            break
    assert checked > 0


def test_parent_links_are_causal(ds):
    """Children never precede their parents and share the parent's job
    (or have none)."""
    ev = ds.events
    children = np.flatnonzero(ev.parent >= 0)
    parents = ev.parent[children]
    assert np.all(ev.time[children] >= ev.time[parents])


def test_no_retirement_before_rollout(ds):
    retire = ds.events.of_type(ErrorType.ECC_PAGE_RETIREMENT)
    rollout = ds.scenario.rates.retirement_active_from
    if len(retire):
        assert retire.time.min() >= rollout


def test_dbe_ground_truth_matches_cards(ds):
    """Console DBE count equals the sum of per-card ground truth."""
    console = len(ds.events.of_type(ErrorType.DBE))
    cards = sum(c.n_dbe for c in ds.fleet.all_cards)
    assert console == cards


def test_inforom_never_exceeds_truth(ds):
    """The InfoROM may lose DBEs (shutdown race) but can at most double
    one (double-commit): per-card ROM count <= 2x ground truth."""
    for card in ds.fleet.all_cards:
        assert card.inforom.total_dbe <= 2 * card.n_dbe


def test_sbe_totals_consistent_across_views(ds):
    """injection aggregate == InfoROM sum == nvsmi table sum."""
    inj = int(ds.sbe_by_slot.sum())
    rom = sum(
        ds.fleet.card_in_slot(s).inforom.total_sbe
        for s in range(ds.machine.n_gpus)
    )
    table = int(ds.nvsmi_table["sbe_total"].sum())
    assert inj == rom == table


def test_events_within_scenario_window(ds):
    ev = ds.events
    assert ev.time.min() >= ds.scenario.start
    # children may spill slightly past the end (delays after a late parent)
    assert ev.time.max() <= ds.scenario.end + 3600.0


def test_jobs_cover_machine_only(ds):
    ds.trace.validate_allocations(ds.machine.n_gpus)
