"""Tests for the determinism & invariant linter (:mod:`repro.lint`).

Each rule gets positive (violating) and negative (clean) inline
fixtures linted through :func:`repro.lint.lint_source`; the CLI and
reporters are tested end-to-end against a temporary fixture tree; and
a self-check asserts the repo's own source lints clean — the invariant
CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.lint import (
    Severity,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    render_json,
    render_rule_list,
    resolve_selection,
)
from repro.lint.engine import PARSE_ERROR_CODE, iter_python_files


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# RL001 — ambient RNG
# ---------------------------------------------------------------------------


class TestRL001:
    def test_flags_stdlib_random_import(self):
        out = lint_source("import random\n", select="RL001")
        assert codes(out) == ["RL001"]

    def test_flags_from_random_import(self):
        out = lint_source("from random import shuffle\n", select="RL001")
        assert codes(out) == ["RL001"]

    def test_flags_default_rng_under_alias(self):
        src = "import numpy as np\ng = np.random.default_rng(0)\n"
        out = lint_source(src, select="RL001")
        assert codes(out) == ["RL001"]
        assert "default_rng" in out[0].message

    def test_flags_module_level_distribution_call(self):
        src = "import numpy\nx = numpy.random.normal(0, 1)\n"
        assert codes(lint_source(src, select="RL001")) == ["RL001"]

    def test_flags_from_numpy_import_random(self):
        src = "from numpy import random as npr\nx = npr.rand(3)\n"
        assert codes(lint_source(src, select="RL001")) == ["RL001"]

    def test_allows_seed_sequence_and_generator_types(self):
        src = (
            "import numpy as np\n"
            "seq = np.random.SeedSequence(1)\n"
            "def f(g: np.random.Generator) -> float:\n"
            "    return g.random()\n"
        )
        assert lint_source(src, select="RL001") == []

    def test_rng_module_exempt(self):
        src = "import numpy as np\ng = np.random.default_rng(7)\n"
        assert lint_source(src, filename="src/repro/rng.py", select="RL001") == []
        # ...but only rng.py itself, not other modules.
        assert lint_source(src, filename="src/repro/sbe.py", select="RL001")


# ---------------------------------------------------------------------------
# RL002 — wall-clock reads, scoped to deterministic directories
# ---------------------------------------------------------------------------


class TestRL002:
    SIM = "pkg/sim/engine.py"

    def test_flags_time_time_in_sim(self):
        src = "import time\nt = time.time()\n"
        out = lint_source(src, filename=self.SIM, select="RL002")
        assert codes(out) == ["RL002"]

    def test_flags_datetime_now_with_alias(self):
        src = "import datetime as _dt\nnow = _dt.datetime.now()\n"
        out = lint_source(src, filename="x/telemetry/log.py", select="RL002")
        assert codes(out) == ["RL002"]

    def test_flags_from_import_datetime(self):
        src = "from datetime import datetime\nnow = datetime.utcnow()\n"
        out = lint_source(src, filename="a/faults/inj.py", select="RL002")
        assert codes(out) == ["RL002"]

    def test_unscoped_paths_are_allowed(self):
        src = "import time\nt = time.time()\n"
        assert lint_source(src, filename="pkg/viz/render.py", select="RL002") == []

    def test_constructing_datetimes_is_fine(self):
        src = "import datetime as _dt\nepoch = _dt.datetime(2013, 6, 1)\n"
        assert lint_source(src, filename=self.SIM, select="RL002") == []


# ---------------------------------------------------------------------------
# RL003 — unordered iteration
# ---------------------------------------------------------------------------


class TestRL003:
    def test_flags_set_literal_for_loop(self):
        src = "for x in {1, 2}:\n    pass\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_flags_set_call_comprehension(self):
        src = "ys = [x for x in set([3, 1])]\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_flags_keys_iteration(self):
        src = "d = {}\nfor k in d.keys():\n    pass\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_flags_list_wrapped_set(self):
        src = "for x in list(set([1, 2])):\n    pass\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_sorted_wrap_is_clean(self):
        src = (
            "d = {}\n"
            "for x in sorted({1, 2}):\n    pass\n"
            "for k in sorted(d.keys()):\n    pass\n"
        )
        assert lint_source(src, select="RL003") == []

    def test_dict_iteration_is_clean(self):
        src = "d = {}\nfor k in d:\n    pass\nxs = list(d.keys())\n"
        assert lint_source(src, select="RL003") == []


# ---------------------------------------------------------------------------
# RL004 — builtin hash()
# ---------------------------------------------------------------------------


class TestRL004:
    def test_flags_builtin_hash(self):
        out = lint_source("key = hash('faults.dbe')\n", select="RL004")
        assert codes(out) == ["RL004"]
        assert "crc32" in out[0].message

    def test_crc32_is_clean(self):
        src = "import zlib\nkey = zlib.crc32(b'faults.dbe')\n"
        assert lint_source(src, select="RL004") == []

    def test_method_hash_is_clean(self):
        src = "class A:\n    def hash(self):\n        return 1\nA().hash()\n"
        # obj.hash() is an attribute call, not the builtin.
        assert lint_source(src, select="RL004") == []


# ---------------------------------------------------------------------------
# RL005 — XID literals must exist in the taxonomy
# ---------------------------------------------------------------------------


class TestRL005:
    def test_known_xid_is_clean(self):
        src = "from repro.errors import by_xid\nts = by_xid(48)\n"
        assert lint_source(src, select="RL005") == []

    def test_unknown_xid_in_by_xid_call(self):
        src = "from repro.errors import by_xid\nts = by_xid(99)\n"
        out = lint_source(src, select="RL005")
        assert codes(out) == ["RL005"]
        assert "99" in out[0].message

    def test_unknown_xid_keyword(self):
        src = "def emit(xid=None):\n    pass\nemit(xid=1234)\n"
        assert codes(lint_source(src, select="RL005")) == ["RL005"]

    def test_unknown_xid_comparison(self):
        src = "def f(event):\n    return event.xid == 999\n"
        assert codes(lint_source(src, select="RL005")) == ["RL005"]

    def test_known_xid_comparison_clean(self):
        src = "def f(event):\n    return event.xid == 63\n"
        assert lint_source(src, select="RL005") == []

    def test_unrelated_integers_ignored(self):
        src = "n = 999\nif n == 999:\n    pass\n"
        assert lint_source(src, select="RL005") == []


# ---------------------------------------------------------------------------
# RL006 — magic duration literals
# ---------------------------------------------------------------------------


class TestRL006:
    @pytest.mark.parametrize(
        "literal,helper",
        [("3600", "HOUR"), ("86400.0", "DAY"), ("86_400.0", "DAY"),
         ("604800", "WEEK")],
    )
    def test_flags_duration_literals(self, literal, helper):
        out = lint_source(f"window = {literal}\n", select="RL006")
        assert codes(out) == ["RL006"]
        assert helper in out[0].message
        assert out[0].severity is Severity.WARNING

    def test_units_module_exempt(self):
        src = "HOUR = 3600.0\n"
        assert lint_source(src, filename="src/repro/units.py", select="RL006") == []

    def test_benign_numbers_clean(self):
        assert lint_source("n = 3601\nm = 60\n", select="RL006") == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestNoqa:
    def test_blanket_noqa(self):
        src = "key = hash('x')  # repro: noqa\n"
        assert lint_source(src, select="RL004") == []

    def test_coded_noqa_suppresses_matching_rule(self):
        src = "key = hash('x')  # repro: noqa[RL004]\n"
        assert lint_source(src, select="RL004") == []

    def test_coded_noqa_keeps_other_rules(self):
        src = "import random  # repro: noqa[RL006]\n"
        assert codes(lint_source(src, select="RL001")) == ["RL001"]

    def test_noqa_is_line_scoped(self):
        src = "# repro: noqa[RL004]\nkey = hash('x')\n"
        assert codes(lint_source(src, select="RL004")) == ["RL004"]

    def test_multiple_codes(self):
        src = "t = 3600.0; k = hash('x')  # repro: noqa[RL004, RL006]\n"
        assert lint_source(src, select="RL004,RL006") == []


# ---------------------------------------------------------------------------
# Engine, registry, reporters
# ---------------------------------------------------------------------------


class TestEngine:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["/no/such/dir/anywhere"])

    def test_syntax_error_becomes_rl000(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = lint_paths([tmp_path])
        assert codes(result.findings) == [PARSE_ERROR_CODE]
        assert result.exit_code == 1

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("k = hash('x')\n")
        (tmp_path / "a.py").write_text("t = 3600\nimport random\n")
        r1 = lint_paths([tmp_path])
        r2 = lint_paths([tmp_path])
        assert r1.findings == r2.findings
        assert [f.path for f in r1.findings] == sorted(
            f.path for f in r1.findings
        )

    def test_unknown_rule_selection(self):
        with pytest.raises(KeyError):
            resolve_selection("RL999")

    def test_registry_has_all_six_rules(self):
        assert [cls.code for cls in all_rules()] == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        ]
        assert get_rule("RL001").name == "no-ambient-rng"

    def test_rule_list_renders_every_rationale(self):
        text = render_rule_list()
        for cls in all_rules():
            assert cls.code in text
            assert cls.rationale.split()[0] in text


class TestJsonReport:
    def test_schema_round_trips(self, tmp_path):
        (tmp_path / "bad.py").write_text("key = hash('x')\n")
        result = lint_paths([tmp_path])
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["ok"] is False
        assert payload["counts"] == {"RL004": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL004"
        assert finding["line"] == 1
        assert finding["severity"] == "error"
        assert finding["path"].endswith("bad.py")
        assert set(payload["rules"]) >= {"RL001", "RL006"}


# ---------------------------------------------------------------------------
# CLI end-to-end + self-check
# ---------------------------------------------------------------------------


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


class TestCli:
    def _fixture_tree(self, tmp_path: Path) -> Path:
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text(
            "import random\n"
            "import time\n"
            "import numpy as np\n"
            "from repro.errors import by_xid\n"
            "g = np.random.default_rng(0)\n"
            "t = time.time()\n"
            "for x in {1, 2}:\n"
            "    pass\n"
            "k = hash('stream')\n"
            "e = by_xid(99)\n"
            "w = 86400.0\n"
        )
        return tmp_path

    def test_fixture_tree_trips_every_rule(self, tmp_path, capsys):
        rc = cli_main(["lint", str(self._fixture_tree(tmp_path))])
        out = capsys.readouterr().out
        assert rc == 1
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert code in out
        # precise file:line rule message format
        assert "sim/bad.py:1:0: RL001" in out

    def test_json_format_round_trips(self, tmp_path, capsys):
        rc = cli_main(
            ["lint", "--format", "json", str(self._fixture_tree(tmp_path))]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["ok"] is False
        assert set(payload["counts"]) == {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        }

    def test_select_narrows_rules(self, tmp_path, capsys):
        rc = cli_main(
            ["lint", "--select", "RL004", str(self._fixture_tree(tmp_path))]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "RL004" in out and "RL001" not in out

    def test_bad_path_exits_2(self, capsys):
        assert cli_main(["lint", "/no/such/path"]) == 2

    def test_bad_selection_exits_2(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        assert cli_main(["lint", "--select", "RL999", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "RL005" in capsys.readouterr().out

    def test_self_check_repo_is_clean(self, capsys):
        """The repo's own source must lint clean — the CI invariant."""
        rc = cli_main(["lint", str(_package_root())])
        assert rc == 0, capsys.readouterr().out

    def test_default_target_is_package(self, capsys):
        rc = cli_main(["lint"])
        assert rc == 0
