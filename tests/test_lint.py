"""Tests for the determinism & invariant linter (:mod:`repro.lint`).

Each rule gets positive (violating) and negative (clean) inline
fixtures linted through :func:`repro.lint.lint_source`; the CLI and
reporters are tested end-to-end against a temporary fixture tree; and
a self-check asserts the repo's own source lints clean — the invariant
CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.lint import (
    Severity,
    all_rules,
    build_project,
    get_rule,
    lint_paths,
    lint_source,
    render_json,
    render_rule_list,
    resolve_selection,
)
from repro.lint.engine import PARSE_ERROR_CODE, iter_python_files


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# RL001 — ambient RNG
# ---------------------------------------------------------------------------


class TestRL001:
    def test_flags_stdlib_random_import(self):
        out = lint_source("import random\n", select="RL001")
        assert codes(out) == ["RL001"]

    def test_flags_from_random_import(self):
        out = lint_source("from random import shuffle\n", select="RL001")
        assert codes(out) == ["RL001"]

    def test_flags_default_rng_under_alias(self):
        src = "import numpy as np\ng = np.random.default_rng(0)\n"
        out = lint_source(src, select="RL001")
        assert codes(out) == ["RL001"]
        assert "default_rng" in out[0].message

    def test_flags_module_level_distribution_call(self):
        src = "import numpy\nx = numpy.random.normal(0, 1)\n"
        assert codes(lint_source(src, select="RL001")) == ["RL001"]

    def test_flags_from_numpy_import_random(self):
        src = "from numpy import random as npr\nx = npr.rand(3)\n"
        assert codes(lint_source(src, select="RL001")) == ["RL001"]

    def test_allows_seed_sequence_and_generator_types(self):
        src = (
            "import numpy as np\n"
            "seq = np.random.SeedSequence(1)\n"
            "def f(g: np.random.Generator) -> float:\n"
            "    return g.random()\n"
        )
        assert lint_source(src, select="RL001") == []

    def test_rng_module_exempt(self):
        src = "import numpy as np\ng = np.random.default_rng(7)\n"
        assert lint_source(src, filename="src/repro/rng.py", select="RL001") == []
        # ...but only rng.py itself, not other modules.
        assert lint_source(src, filename="src/repro/sbe.py", select="RL001")


# ---------------------------------------------------------------------------
# RL002 — wall-clock reads, scoped to deterministic directories
# ---------------------------------------------------------------------------


class TestRL002:
    SIM = "pkg/sim/engine.py"

    def test_flags_time_time_in_sim(self):
        src = "import time\nt = time.time()\n"
        out = lint_source(src, filename=self.SIM, select="RL002")
        assert codes(out) == ["RL002"]

    def test_flags_datetime_now_with_alias(self):
        src = "import datetime as _dt\nnow = _dt.datetime.now()\n"
        out = lint_source(src, filename="x/telemetry/log.py", select="RL002")
        assert codes(out) == ["RL002"]

    def test_flags_from_import_datetime(self):
        src = "from datetime import datetime\nnow = datetime.utcnow()\n"
        out = lint_source(src, filename="a/faults/inj.py", select="RL002")
        assert codes(out) == ["RL002"]

    def test_unscoped_paths_are_allowed(self):
        src = "import time\nt = time.time()\n"
        assert lint_source(src, filename="pkg/viz/render.py", select="RL002") == []

    def test_constructing_datetimes_is_fine(self):
        src = "import datetime as _dt\nepoch = _dt.datetime(2013, 6, 1)\n"
        assert lint_source(src, filename=self.SIM, select="RL002") == []


# ---------------------------------------------------------------------------
# RL003 — unordered iteration
# ---------------------------------------------------------------------------


class TestRL003:
    def test_flags_set_literal_for_loop(self):
        src = "for x in {1, 2}:\n    pass\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_flags_set_call_comprehension(self):
        src = "ys = [x for x in set([3, 1])]\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_flags_keys_iteration(self):
        src = "d = {}\nfor k in d.keys():\n    pass\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_flags_list_wrapped_set(self):
        src = "for x in list(set([1, 2])):\n    pass\n"
        assert codes(lint_source(src, select="RL003")) == ["RL003"]

    def test_sorted_wrap_is_clean(self):
        src = (
            "d = {}\n"
            "for x in sorted({1, 2}):\n    pass\n"
            "for k in sorted(d.keys()):\n    pass\n"
        )
        assert lint_source(src, select="RL003") == []

    def test_dict_iteration_is_clean(self):
        src = "d = {}\nfor k in d:\n    pass\nxs = list(d.keys())\n"
        assert lint_source(src, select="RL003") == []


# ---------------------------------------------------------------------------
# RL004 — builtin hash()
# ---------------------------------------------------------------------------


class TestRL004:
    def test_flags_builtin_hash(self):
        out = lint_source("key = hash('faults.dbe')\n", select="RL004")
        assert codes(out) == ["RL004"]
        assert "crc32" in out[0].message

    def test_crc32_is_clean(self):
        src = "import zlib\nkey = zlib.crc32(b'faults.dbe')\n"
        assert lint_source(src, select="RL004") == []

    def test_method_hash_is_clean(self):
        src = "class A:\n    def hash(self):\n        return 1\nA().hash()\n"
        # obj.hash() is an attribute call, not the builtin.
        assert lint_source(src, select="RL004") == []


# ---------------------------------------------------------------------------
# RL005 — XID literals must exist in the taxonomy
# ---------------------------------------------------------------------------


class TestRL005:
    def test_known_xid_is_clean(self):
        src = "from repro.errors import by_xid\nts = by_xid(48)\n"
        assert lint_source(src, select="RL005") == []

    def test_unknown_xid_in_by_xid_call(self):
        src = "from repro.errors import by_xid\nts = by_xid(99)\n"
        out = lint_source(src, select="RL005")
        assert codes(out) == ["RL005"]
        assert "99" in out[0].message

    def test_unknown_xid_keyword(self):
        src = "def emit(xid=None):\n    pass\nemit(xid=1234)\n"
        assert codes(lint_source(src, select="RL005")) == ["RL005"]

    def test_unknown_xid_comparison(self):
        src = "def f(event):\n    return event.xid == 999\n"
        assert codes(lint_source(src, select="RL005")) == ["RL005"]

    def test_known_xid_comparison_clean(self):
        src = "def f(event):\n    return event.xid == 63\n"
        assert lint_source(src, select="RL005") == []

    def test_unrelated_integers_ignored(self):
        src = "n = 999\nif n == 999:\n    pass\n"
        assert lint_source(src, select="RL005") == []


# ---------------------------------------------------------------------------
# RL006 — magic duration literals
# ---------------------------------------------------------------------------


class TestRL006:
    @pytest.mark.parametrize(
        "literal,helper",
        [("3600", "HOUR"), ("86400.0", "DAY"), ("86_400.0", "DAY"),
         ("604800", "WEEK")],
    )
    def test_flags_duration_literals(self, literal, helper):
        out = lint_source(f"window = {literal}\n", select="RL006")
        assert codes(out) == ["RL006"]
        assert helper in out[0].message
        assert out[0].severity is Severity.WARNING

    def test_units_module_exempt(self):
        src = "HOUR = 3600.0\n"
        assert lint_source(src, filename="src/repro/units.py", select="RL006") == []

    def test_benign_numbers_clean(self):
        assert lint_source("n = 3601\nm = 60\n", select="RL006") == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestNoqa:
    def test_blanket_noqa(self):
        src = "key = hash('x')  # repro: noqa\n"
        assert lint_source(src, select="RL004") == []

    def test_coded_noqa_suppresses_matching_rule(self):
        src = "key = hash('x')  # repro: noqa[RL004]\n"
        assert lint_source(src, select="RL004") == []

    def test_coded_noqa_keeps_other_rules(self):
        src = "import random  # repro: noqa[RL006]\n"
        assert codes(lint_source(src, select="RL001")) == ["RL001"]

    def test_noqa_is_line_scoped(self):
        src = "# repro: noqa[RL004]\nkey = hash('x')\n"
        assert codes(lint_source(src, select="RL004")) == ["RL004"]

    def test_multiple_codes(self):
        src = "t = 3600.0; k = hash('x')  # repro: noqa[RL004, RL006]\n"
        assert lint_source(src, select="RL004,RL006") == []


# ---------------------------------------------------------------------------
# Engine, registry, reporters
# ---------------------------------------------------------------------------


class TestEngine:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["/no/such/dir/anywhere"])

    def test_syntax_error_becomes_rl000(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = lint_paths([tmp_path])
        assert codes(result.findings) == [PARSE_ERROR_CODE]
        assert result.exit_code == 1

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("k = hash('x')\n")
        (tmp_path / "a.py").write_text("t = 3600\nimport random\n")
        r1 = lint_paths([tmp_path])
        r2 = lint_paths([tmp_path])
        assert r1.findings == r2.findings
        assert [f.path for f in r1.findings] == sorted(
            f.path for f in r1.findings
        )

    def test_unknown_rule_selection(self):
        with pytest.raises(KeyError):
            resolve_selection("RL999")

    def test_registry_has_all_rules(self):
        assert [cls.code for cls in all_rules()] == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL100", "RL101", "RL102", "RL103",
        ]
        assert get_rule("RL001").name == "no-ambient-rng"
        assert get_rule("RL007").name == "unused-suppression"
        assert get_rule("RL100").name == "seed-flow"

    def test_rule_list_renders_every_rationale(self):
        text = render_rule_list()
        for cls in all_rules():
            assert cls.code in text
            assert cls.rationale.split()[0] in text


class TestJsonReport:
    def test_schema_round_trips(self, tmp_path):
        (tmp_path / "bad.py").write_text("key = hash('x')\n")
        result = lint_paths([tmp_path])
        payload = json.loads(render_json(result))
        assert payload["version"] == 2
        assert payload["files_checked"] == 1
        assert payload["ok"] is False
        assert payload["counts"] == {"RL004": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "RL004"
        assert finding["line"] == 1
        assert finding["severity"] == "error"
        assert finding["path"].endswith("bad.py")
        assert finding["fixable"] is False
        assert set(payload["rules"]) >= {"RL001", "RL006", "RL100"}


# ---------------------------------------------------------------------------
# CLI end-to-end + self-check
# ---------------------------------------------------------------------------


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


class TestCli:
    def _fixture_tree(self, tmp_path: Path) -> Path:
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "bad.py").write_text(
            "import random\n"
            "import time\n"
            "import numpy as np\n"
            "from repro.errors import by_xid\n"
            "g = np.random.default_rng(0)\n"
            "t = time.time()\n"
            "for x in {1, 2}:\n"
            "    pass\n"
            "k = hash('stream')\n"
            "e = by_xid(99)\n"
            "w = 86400.0\n"
        )
        return tmp_path

    def test_fixture_tree_trips_every_rule(self, tmp_path, capsys):
        rc = cli_main(["lint", str(self._fixture_tree(tmp_path))])
        out = capsys.readouterr().out
        assert rc == 1
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert code in out
        # precise file:line rule message format
        assert "sim/bad.py:1:0: RL001" in out

    def test_json_format_round_trips(self, tmp_path, capsys):
        rc = cli_main(
            ["lint", "--format", "json", str(self._fixture_tree(tmp_path))]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["ok"] is False
        assert set(payload["counts"]) == {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        }

    def test_select_narrows_rules(self, tmp_path, capsys):
        rc = cli_main(
            ["lint", "--select", "RL004", str(self._fixture_tree(tmp_path))]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "RL004" in out and "RL001" not in out

    def test_bad_path_exits_2(self, capsys):
        assert cli_main(["lint", "/no/such/path"]) == 2

    def test_bad_selection_exits_2(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        assert cli_main(["lint", "--select", "RL999", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "RL005" in capsys.readouterr().out

    def test_self_check_repo_is_clean(self, capsys):
        """The repo's own source must lint clean — the CI invariant."""
        rc = cli_main(["lint", str(_package_root())])
        assert rc == 0, capsys.readouterr().out

    def test_default_target_is_package(self, capsys):
        rc = cli_main(["lint"])
        assert rc == 0


# ---------------------------------------------------------------------------
# RL007 — unused / unknown-code suppressions
# ---------------------------------------------------------------------------


class TestRL007:
    def test_flags_unused_blanket_marker(self):
        out = lint_source("x = 1  # repro: noqa\n")
        assert codes(out) == ["RL007"]
        assert "suppresses nothing" in out[0].message
        assert out[0].fix is not None

    def test_flags_unused_coded_marker(self):
        out = lint_source("x = 1  # repro: noqa[RL004]\n")
        assert codes(out) == ["RL007"]

    def test_used_marker_is_clean(self):
        assert lint_source("k = hash('x')  # repro: noqa[RL004]\n") == []

    def test_flags_unknown_codes(self):
        out = lint_source("k = hash('x')  # repro: noqa[RL004, RL999]\n")
        assert codes(out) == ["RL007"]
        assert "RL999" in out[0].message

    def test_docstring_example_is_not_a_marker(self):
        src = '"""Docs: suppress with ``# repro: noqa[RL001]``."""\nx = 1\n'
        assert lint_source(src) == []

    def test_select_run_skips_unused_check(self):
        # Under --select a marker for an unselected rule would look
        # spuriously dead, so only the unknown-code check runs.
        src = "x = 1  # repro: noqa[RL004]\n"
        assert lint_source(src, select="RL004,RL007") == []
        bad = "k = hash('x')  # repro: noqa[RL004,RL999]\n"
        assert codes(lint_source(bad, select="RL004,RL007")) == ["RL007"]

    def test_rl007_is_not_itself_suppressible(self):
        # The stale marker cannot mute the finding about itself.
        out = lint_source("x = 1  # repro: noqa\n")
        assert codes(out) == ["RL007"]


# ---------------------------------------------------------------------------
# RL100 — seed-flow taint
# ---------------------------------------------------------------------------


class TestRL100:
    def test_draw_from_rng_param_is_clean(self):
        src = "def f(rng):\n    return rng.normal(0, 1)\n"
        assert lint_source(src, select="RL100") == []

    def test_draw_from_derived_local_is_clean(self):
        src = (
            "def f(rng_tree):\n"
            "    g = rng_tree.fresh_generator('faults')\n"
            "    return g.normal()\n"
        )
        assert lint_source(src, select="RL100") == []

    def test_draw_from_opaque_local_is_flagged(self):
        src = (
            "def f(state):\n"
            "    g = state.thing()\n"
            "    return g.normal()\n"
        )
        out = lint_source(src, select="RL100")
        assert codes(out) == ["RL100"]
        assert "rng parameter" in out[0].message

    def test_helper_returning_derivation_is_clean(self):
        # Seed flow follows the call graph through project helpers.
        src = (
            "from repro.rng import RngTree\n"
            "def make_rng():\n"
            "    return RngTree(2).fresh_generator('stats')\n"
            "def f():\n"
            "    g = make_rng()\n"
            "    return g.normal()\n"
        )
        assert lint_source(src, select="RL100") == []

    def test_draw_from_module_global_is_flagged(self):
        src = (
            "import numpy as np\n"
            "g = np.random.default_rng(0)\n"
            "def f():\n"
            "    return g.normal()\n"
        )
        out = lint_source(src, select="RL100")
        assert codes(out) == ["RL100"]
        assert "module-level generator" in out[0].message

    def test_import_time_draw_is_flagged(self):
        src = (
            "import numpy as np\n"
            "g = np.random.default_rng(0)\n"
            "x = g.normal()\n"
        )
        out = lint_source(src, select="RL100")
        assert codes(out) == ["RL100"]
        assert "import time" in out[0].message

    def test_stdlib_module_attribute_not_flagged(self):
        # math.gamma is the function, not a Generator draw.
        src = "import math\nx = math.gamma(0.5)\n"
        assert lint_source(src, select="RL100") == []

    def test_call_dropping_required_rng_param_is_flagged(self):
        src = (
            "def noisy(n, rng):\n"
            "    return rng.normal(size=n)\n"
            "def caller():\n"
            "    return noisy(3)\n"
        )
        out = lint_source(src, select="RL100")
        assert codes(out) == ["RL100"]
        assert "`rng`" in out[0].message

    def test_call_threading_rng_is_clean(self):
        src = (
            "def noisy(n, rng):\n"
            "    return rng.normal(size=n)\n"
            "def caller(rng):\n"
            "    return noisy(3, rng)\n"
        )
        assert lint_source(src, select="RL100") == []

    def test_rng_with_default_is_optional(self):
        src = (
            "def noisy(n, rng=None):\n"
            "    pass\n"
            "def caller():\n"
            "    return noisy(3)\n"
        )
        assert lint_source(src, select="RL100") == []

    def test_nested_def_inherits_rng_param(self):
        src = (
            "def outer(rng):\n"
            "    def inner():\n"
            "        return rng.normal()\n"
            "    return inner()\n"
        )
        assert lint_source(src, select="RL100") == []


# ---------------------------------------------------------------------------
# RL101 — spawn safety
# ---------------------------------------------------------------------------


class TestRL101:
    IMP = "from repro.parallel.pool import parallel_map, map_reduce\n"

    def test_lambda_is_flagged(self):
        src = self.IMP + "def f(xs):\n    return parallel_map(lambda x: x, xs)\n"
        out = lint_source(src, select="RL101")
        assert codes(out) == ["RL101"]
        assert "lambda" in out[0].message

    def test_nested_def_is_flagged(self):
        src = self.IMP + (
            "def f(xs):\n"
            "    def work(x):\n"
            "        return x\n"
            "    return parallel_map(work, xs)\n"
        )
        out = lint_source(src, select="RL101")
        assert codes(out) == ["RL101"]
        assert "closure-local" in out[0].message

    def test_module_level_function_is_clean(self):
        src = self.IMP + (
            "def work(x):\n"
            "    return x\n"
            "def f(xs):\n"
            "    return parallel_map(work, xs)\n"
        )
        assert lint_source(src, select="RL101") == []

    def test_locally_bound_callable_is_flagged(self):
        src = self.IMP + (
            "def pick(name):\n"
            "    pass\n"
            "def f(xs, name):\n"
            "    work = pick(name)\n"
            "    return parallel_map(work, xs)\n"
        )
        out = lint_source(src, select="RL101")
        assert codes(out) == ["RL101"]
        assert "locally-bound" in out[0].message

    def test_bound_method_is_flagged(self):
        src = self.IMP + (
            "def f(runner, xs):\n"
            "    return parallel_map(runner.step, xs)\n"
        )
        out = lint_source(src, select="RL101")
        assert codes(out) == ["RL101"]
        assert "bound method" in out[0].message

    def test_map_reduce_checks_both_callables(self):
        src = self.IMP + (
            "def work(x):\n"
            "    return x\n"
            "def f(xs):\n"
            "    return map_reduce(work, xs, lambda a, b: a + b)\n"
        )
        out = lint_source(src, select="RL101")
        assert codes(out) == ["RL101"]
        assert "map_reduce" in out[0].message

    def test_fn_keyword_is_checked(self):
        src = self.IMP + (
            "def f(xs):\n"
            "    return parallel_map(fn=lambda x: x, items=xs)\n"
        )
        assert codes(lint_source(src, select="RL101")) == ["RL101"]

    def test_noqa_suppresses_project_finding(self):
        src = self.IMP + (
            "def f(xs):\n"
            "    return parallel_map(lambda x: x, xs)"
            "  # repro: noqa[RL101]\n"
        )
        assert lint_source(src, select="RL101") == []


# ---------------------------------------------------------------------------
# RL102 — cache-key purity
# ---------------------------------------------------------------------------


class TestRL102:
    KEYS = "pkg/cache/keys.py"

    def test_env_read_in_keys_module_is_flagged(self):
        src = (
            "import os\n"
            "def fingerprint(s):\n"
            "    return os.getenv('HOSTNAME')\n"
        )
        out = lint_source(src, filename=self.KEYS, select="RL102")
        assert codes(out) == ["RL102"]
        assert "ambient process state" in out[0].message

    def test_environ_subscript_is_flagged(self):
        src = (
            "import os\n"
            "def fingerprint(s):\n"
            "    return os.environ['HOME']\n"
        )
        out = lint_source(src, filename=self.KEYS, select="RL102")
        assert codes(out) == ["RL102"]

    def test_wall_clock_reachable_from_keys_is_flagged(self):
        src = (
            "import time\n"
            "def _stamp():\n"
            "    return time.time()\n"
            "def fingerprint(s):\n"
            "    return _stamp()\n"
        )
        out = lint_source(src, filename=self.KEYS, select="RL102")
        assert codes(out) == ["RL102"]
        assert "wall clock" in out[0].message

    def test_pure_keys_module_is_clean(self):
        src = (
            "import hashlib\n"
            "import json\n"
            "def fingerprint(s):\n"
            "    blob = json.dumps(s, sort_keys=True)\n"
            "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        )
        assert lint_source(src, filename=self.KEYS, select="RL102") == []

    def test_other_modules_unconstrained(self):
        src = "import os\ndef f():\n    return os.getenv('HOME')\n"
        assert lint_source(src, filename="pkg/viz/render.py", select="RL102") == []

    def test_repo_keys_module_is_pure(self):
        # The real fingerprinting closure must satisfy its own rule.
        result = lint_paths([_package_root()], select="RL102")
        assert result.findings == ()


# ---------------------------------------------------------------------------
# RL103 — epoch discipline
# ---------------------------------------------------------------------------


class TestRL103:
    DET_DIRS = (
        "sim", "faults", "workload", "telemetry", "chaos", "cache", "stream"
    )

    def _tree(self, tmp_path: Path, surface_line: str | None) -> Path:
        for d in self.DET_DIRS:
            (tmp_path / d).mkdir(exist_ok=True)
            (tmp_path / d / "mod.py").write_text(
                f"def {d}_entry(x):\n    return x\n"
            )
        keys_lines = ["PIPELINE_EPOCH = 1"]
        if surface_line is not None:
            keys_lines.append(surface_line)
        (tmp_path / "cache" / "keys.py").write_text(
            "\n".join(keys_lines) + "\n"
        )
        return tmp_path

    def _digest(self, root: Path) -> str:
        from repro.lint.context import build_context
        from repro.lint.flow import surface_digest

        contexts = [build_context(p) for p in iter_python_files([root])]
        return surface_digest(build_project(contexts))

    def test_missing_surface_constant_is_flagged(self, tmp_path):
        root = self._tree(tmp_path, None)
        result = lint_paths([root], select="RL103")
        assert codes(result.findings) == ["RL103"]
        assert "PIPELINE_SURFACE" in result.findings[0].message

    def test_recorded_digest_matches_is_clean(self, tmp_path):
        root = self._tree(tmp_path, None)
        digest = self._digest(root)
        root = self._tree(tmp_path, f"PIPELINE_SURFACE = '{digest}'")
        assert lint_paths([root], select="RL103").findings == ()

    def test_surface_drift_is_flagged(self, tmp_path):
        root = self._tree(tmp_path, "PIPELINE_SURFACE = 'deadbeefdeadbeef'")
        result = lint_paths([root], select="RL103")
        assert codes(result.findings) == ["RL103"]
        assert "drifted" in result.findings[0].message

    def test_new_public_function_moves_digest(self, tmp_path):
        root = self._tree(tmp_path, None)
        before = self._digest(root)
        (root / "sim" / "mod.py").write_text(
            "def sim_entry(x):\n    return x\n"
            "def sim_extra(y, rate=0.5):\n    return y\n"
        )
        assert self._digest(root) != before

    def test_private_helper_does_not_move_digest(self, tmp_path):
        root = self._tree(tmp_path, None)
        before = self._digest(root)
        (root / "sim" / "mod.py").write_text(
            "def sim_entry(x):\n    return x\n"
            "def _helper(y):\n    return y\n"
        )
        assert self._digest(root) == before

    def test_partial_lint_skips_the_rule(self, tmp_path):
        # Linting one subtree must not compare an incomplete surface.
        root = self._tree(tmp_path, "PIPELINE_SURFACE = 'deadbeefdeadbeef'")
        result = lint_paths([root / "cache"], select="RL103")
        assert result.findings == ()

    def test_repo_surface_digest_is_current(self):
        # The committed PIPELINE_SURFACE matches the live tree; when this
        # fails, decide on a PIPELINE_EPOCH bump and re-record the digest.
        result = lint_paths([_package_root()], select="RL103")
        assert result.findings == ()


# ---------------------------------------------------------------------------
# File discovery exclusions (hidden / vendored directories)
# ---------------------------------------------------------------------------


class TestFileDiscovery:
    def test_hidden_and_vendored_dirs_are_skipped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        for vendored in (".venv", ".git", ".tox", "build", "node_modules"):
            (tmp_path / vendored / "sub").mkdir(parents=True)
            (tmp_path / vendored / "sub" / "bad.py").write_text("import random\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "c.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [p.name for p in files] == ["ok.py"]

    def test_explicit_file_inside_excluded_dir_is_honoured(self, tmp_path):
        hidden = tmp_path / ".venv"
        hidden.mkdir()
        target = hidden / "probe.py"
        target.write_text("x = 1\n")
        assert iter_python_files([target]) == [target]

    def test_explicitly_passed_root_is_not_excluded(self, tmp_path):
        # Exclusion applies below the given root, not to the root itself.
        root = tmp_path / "build"
        root.mkdir()
        (root / "mod.py").write_text("x = 1\n")
        assert [p.name for p in iter_python_files([root])] == ["mod.py"]

    def test_excluded_findings_do_not_appear(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / ".venv").mkdir()
        (tmp_path / ".venv" / "bad.py").write_text("import random\n")
        result = lint_paths([tmp_path])
        assert result.findings == ()
        assert result.files_checked == 1


# ---------------------------------------------------------------------------
# --fix autofixer
# ---------------------------------------------------------------------------


class TestFix:
    def test_rl006_fix_rewrites_and_imports(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("window = 86400.0\nspan = 2 * 604800\n")
        rc = cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        text = mod.read_text()
        assert rc == 0
        assert "from repro.units import DAY, WEEK" in text
        assert "window = DAY" in text
        assert "span = 2 * WEEK" in text

    def test_rl006_fix_extends_existing_import(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("from repro.units import HOUR\nwindow = 86400.0\n")
        cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        assert "from repro.units import DAY, HOUR" in mod.read_text()

    def test_stale_noqa_is_removed(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("x = 1  # repro: noqa\ny = 2\n")
        rc = cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        assert mod.read_text() == "x = 1\ny = 2\n"

    def test_unknown_codes_are_rewritten(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("k = hash('x')  # repro: noqa[RL004,RL999]\n")
        rc = cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        assert mod.read_text() == "k = hash('x')  # repro: noqa[RL004]\n"

    def test_fix_converges_in_one_pass(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("t = 3600\nx = 1  # repro: noqa\n")
        cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        first = mod.read_text()
        rc = cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        assert mod.read_text() == first  # idempotent

    def test_fix_on_clean_tree_is_byte_identical(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        original = "from repro.units import HOUR\nwindow = HOUR\n"
        mod.write_text(original)
        rc = cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        assert mod.read_bytes() == original.encode()

    def test_unfixable_findings_survive_fix(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("import random\nt = 3600\n")
        rc = cli_main(["lint", "--fix", str(tmp_path)])
        capsys.readouterr()
        assert rc == 1  # RL001 has no mechanical fix
        assert "import random" in mod.read_text()
        assert "HOUR" in mod.read_text()


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class TestBaseline:
    def _dirty(self, tmp_path: Path) -> Path:
        (tmp_path / "m.py").write_text("import random\nk = hash('x')\n")
        return tmp_path

    def test_write_then_apply_round_trips(self, tmp_path, capsys):
        root = self._dirty(tmp_path)
        bl = tmp_path / "bl.json"
        assert cli_main(
            ["lint", "--write-baseline", str(bl), str(root)]
        ) == 0
        capsys.readouterr()
        doc = json.loads(bl.read_text())
        assert doc["version"] == 1
        assert {e["code"] for e in doc["entries"]} == {"RL001", "RL004"}
        rc = cli_main(["lint", "--baseline", str(bl), str(root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out

    def test_new_finding_beyond_allowance_fails(self, tmp_path, capsys):
        root = self._dirty(tmp_path)
        bl = tmp_path / "bl.json"
        cli_main(["lint", "--write-baseline", str(bl), str(root)])
        capsys.readouterr()
        (root / "m.py").write_text(
            "import random\nk = hash('x')\nk2 = hash('y')\n"
        )
        rc = cli_main(["lint", "--baseline", str(bl), str(root)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RL004" in out

    def test_stale_entry_fails_the_run(self, tmp_path, capsys):
        root = self._dirty(tmp_path)
        bl = tmp_path / "bl.json"
        cli_main(["lint", "--write-baseline", str(bl), str(root)])
        capsys.readouterr()
        (root / "m.py").write_text("import random\n")  # RL004 fixed
        rc = cli_main(["lint", "--baseline", str(bl), str(root)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "stale baseline entry" in captured.err
        assert "RL004" in captured.err

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        root = self._dirty(tmp_path)
        bl = tmp_path / "bl.json"
        bl.write_text('{"version": 99}')
        assert cli_main(["lint", "--baseline", str(bl), str(root)]) == 2

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        root = self._dirty(tmp_path)
        rc = cli_main(
            ["lint", "--baseline", str(tmp_path / "nope.json"), str(root)]
        )
        assert rc == 2

    def test_repo_baseline_has_no_stale_entries(self, capsys, monkeypatch):
        """The committed baseline must track reality — the CI invariant."""
        repo_root = _package_root().parent.parent
        bl = repo_root / "lint-baseline.json"
        if not bl.is_file():  # pragma: no cover - layout drift guard
            pytest.skip("no committed baseline next to this checkout")
        monkeypatch.chdir(repo_root)
        rc = cli_main(
            ["lint", "--baseline", str(bl), "src", "tests", "benchmarks"]
        )
        out = capsys.readouterr()
        assert rc == 0, out.out + out.err


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


class TestSarif:
    def _findings_doc(self, tmp_path, capsys) -> dict:
        (tmp_path / "m.py").write_text("k = hash('x')\n")
        rc = cli_main(["lint", "--format", "sarif", str(tmp_path)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        return doc

    def test_sarif_2_1_0_shape(self, tmp_path, capsys):
        doc = self._findings_doc(tmp_path, capsys)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert "RL004" in rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning",
            )

    def test_sarif_results_are_one_based(self, tmp_path, capsys):
        doc = self._findings_doc(tmp_path, capsys)
        (res,) = doc["runs"][0]["results"]
        assert res["ruleId"] == "RL004"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert loc["region"]["startLine"] == 1
        assert loc["region"]["startColumn"] >= 1

    def test_result_rule_ids_all_in_catalog(self, tmp_path, capsys):
        doc = self._findings_doc(tmp_path, capsys)
        (run,) = doc["runs"]
        catalog = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in run["results"]} <= catalog

    def test_clean_tree_sarif_exits_0(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        rc = cli_main(["lint", "--format", "sarif", str(tmp_path)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# Exit-code contract across formats + console script
# ---------------------------------------------------------------------------


class TestExitCodes:
    @pytest.mark.parametrize("fmt", ["human", "json", "sarif"])
    def test_clean_is_0(self, fmt, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        assert cli_main(["lint", "--format", fmt, str(tmp_path)]) == 0

    @pytest.mark.parametrize("fmt", ["human", "json", "sarif"])
    def test_findings_are_1(self, fmt, tmp_path, capsys):
        (tmp_path / "m.py").write_text("k = hash('x')\n")
        assert cli_main(["lint", "--format", fmt, str(tmp_path)]) == 1

    @pytest.mark.parametrize("fmt", ["human", "json", "sarif"])
    def test_bad_invocation_is_2(self, fmt, capsys):
        assert cli_main(["lint", "--format", fmt, "/no/such/path"]) == 2


class TestConsoleScript:
    def test_main_list_rules(self, capsys):
        from repro.lint.cli import main

        assert main(["--list-rules"]) == 0
        assert "RL103" in capsys.readouterr().out

    def test_main_lints_paths(self, tmp_path, capsys):
        from repro.lint.cli import main

        (tmp_path / "m.py").write_text("k = hash('x')\n")
        assert main([str(tmp_path)]) == 1
        assert main(["--select", "RL001", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_entry_point_is_declared(self):
        tomllib = pytest.importorskip("tomllib")  # stdlib from 3.11

        root = _package_root().parent.parent
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():  # pragma: no cover - layout drift
            pytest.skip("no pyproject next to this checkout")
        meta = tomllib.loads(pyproject.read_text())
        assert (
            meta["project"]["scripts"]["repro-lint"]
            == "repro.lint.cli:main"
        )
