"""Crash-safety tests for :mod:`repro.supervise` and the process chaos
harness.

Three layers, matching how the machinery fails in the field:

* unit tests of the journal's durability contract (checksummed records,
  torn-tail truncation), the fault plans and the graceful-shutdown
  guard — all in-process and cheap;
* in-process runner tests: cold == resume byte-identity, corrupt
  artifacts recomputed, explicit run-id mismatches refused, parallel
  parity;
* subprocess tests: a real ``python -m repro run`` SIGINT/SIGTERMed
  mid-flight (exit 130/143, valid journal, no staging debris, clean
  resume) and a small ``chaos-run`` sweep — SIGKILL, torn write and
  ENOSPC at real journal barriers — asserting byte-identical recovery.
  CI runs the full every-barrier sweep; here a representative subset
  keeps the suite fast.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cache import ArtifactStore, artifact_key, dataset_key
from repro.chaos.procfault import (
    FAULT_MODES,
    PROCFAULT_ENV,
    FaultPlan,
    ProcessFaultInjector,
    plan_from_env,
)
from repro.sim import Scenario
from repro.supervise import (
    GracefulShutdown,
    JournalError,
    RunInterrupted,
    RunJournal,
    read_journal,
)
from repro.supervise.chaosrun import count_barriers, run_sweep
from repro.supervise.runner import (
    STAGE_DELAY_ENV,
    document_json,
    journal_path,
    list_runs,
    run_id_for,
    run_study,
)
from repro.supervise.signals import interrupt_exit_code
from repro.supervise.watchdog import (
    ChunkHeartbeat,
    ChunkWatch,
    ManualClock,
    read_heartbeat,
)

_SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _tiny_scenario(seed: int = 7) -> Scenario:
    return Scenario.smoke(seed=seed, days=3.0)


def _cli_env(**extra: str) -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        _SRC_DIR if not existing else _SRC_DIR + os.pathsep + existing
    )
    env.pop("REPRO_CACHE_DIR", None)
    env.pop(PROCFAULT_ENV, None)
    env.pop(STAGE_DELAY_ENV, None)
    env.update(extra)
    return env


# ---------------------------------------------------------------------------
# journal
# ---------------------------------------------------------------------------


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path) as journal:
            journal.append("run_start", run_id="r", dataset_key="d")
            journal.append("stage", name="fig2", digest="abc")
            journal.append("run_end", document_sha256="xyz")
        records, valid_bytes, problems = read_journal(path)
        assert [r.type for r in records] == ["run_start", "stage", "run_end"]
        assert [r.seq for r in records] == [0, 1, 2]
        assert records[1].get("name") == "fig2"
        assert valid_bytes == path.stat().st_size
        assert problems == []

    def test_missing_file_is_empty(self, tmp_path):
        records, valid_bytes, problems = read_journal(tmp_path / "nope.jsonl")
        assert (records, valid_bytes, problems) == ([], 0, [])

    def test_reserved_payload_field_rejected(self, tmp_path):
        with RunJournal.create(tmp_path / "r.jsonl") as journal:
            with pytest.raises(JournalError, match="reserved"):
                journal.append("stage", seq=9)

    def test_unserializable_payload_rejected(self, tmp_path):
        with RunJournal.create(tmp_path / "r.jsonl") as journal:
            with pytest.raises(JournalError, match="unserializable"):
                journal.append("stage", blob=object())
        # the bad append must not have committed anything
        records, _bytes, problems = read_journal(tmp_path / "r.jsonl")
        assert records == [] and problems == []

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with RunJournal.create(path) as journal:
            journal.append("run_start", run_id="r")
            journal.append("stage", name="fig2")
        good_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 2, "type": "stage", "na')  # torn mid-record
        records, valid_bytes, problems = read_journal(path)
        assert len(records) == 2 and valid_bytes == good_size and problems
        with RunJournal.resume(path) as journal:
            assert journal.truncated_tail
            assert journal.next_seq == 2
            journal.append("stage", name="fig3")
        assert path.stat().st_size > good_size
        records, _bytes, problems = read_journal(path)
        assert [r.get("name") for r in records[1:]] == ["fig2", "fig3"]
        assert problems == []

    def test_corrupted_record_stops_parse(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with RunJournal.create(path) as journal:
            journal.append("run_start", run_id="r")
            journal.append("stage", name="fig2")
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip a byte inside the last record
        path.write_bytes(bytes(blob))
        records, _bytes, problems = read_journal(path)
        assert len(records) == 1 and problems

    def test_duplicated_line_rejected_by_seq(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with RunJournal.create(path) as journal:
            journal.append("run_start", run_id="r")
        line = path.read_bytes()
        path.write_bytes(line + line)  # page-cache replay double-write
        records, _bytes, problems = read_journal(path)
        assert len(records) == 1 and problems

    def test_resume_missing_file_starts_empty(self, tmp_path):
        with RunJournal.resume(tmp_path / "fresh.jsonl") as journal:
            assert journal.next_seq == 0
            assert not journal.truncated_tail
            journal.append("run_start", run_id="r")

    def test_append_after_close_raises(self, tmp_path):
        journal = RunJournal.create(tmp_path / "r.jsonl")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("stage")


# ---------------------------------------------------------------------------
# fault plans and the injector
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_encode_round_trip(self):
        for mode in FAULT_MODES:
            plan = FaultPlan.parse(f"{mode}:7")
            assert (plan.mode, plan.barrier) == (mode, 7)
            assert FaultPlan.parse(plan.encode()) == plan

    def test_bad_specs_rejected(self):
        for spec in ("nuke:1", "kill", "kill:", "kill:x", ":3"):
            with pytest.raises(ValueError):
                FaultPlan.parse(spec)
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan(mode="kill", barrier=-1)

    def test_plan_from_env(self):
        assert plan_from_env({}) is None
        assert plan_from_env({PROCFAULT_ENV: ""}) is None
        plan = plan_from_env({PROCFAULT_ENV: "torn:4"})
        assert (plan.mode, plan.barrier) == ("torn", 4)


class TestInjector:
    """In-process injector behavior, with ``_die`` recorded not obeyed."""

    @pytest.fixture
    def deaths(self, monkeypatch):
        recorded = []
        monkeypatch.setattr(
            "repro.chaos.procfault._die", lambda: recorded.append(True)
        )
        return recorded

    def test_kill_after_commit_at_barrier(self, tmp_path, deaths):
        hook = ProcessFaultInjector(FaultPlan("kill", 1))
        with RunJournal.create(tmp_path / "r.jsonl", fault_hook=hook) as j:
            j.append("run_start", run_id="r")
            assert not deaths
            j.append("stage", name="fig2")  # barrier 1: dies *after* commit
            assert len(deaths) == 1
            j.append("stage", name="fig3")  # trips at most once
            assert len(deaths) == 1
        records, _bytes, problems = read_journal(tmp_path / "r.jsonl")
        assert len(records) == 3 and problems == []

    def test_torn_write_leaves_invalid_tail(self, tmp_path, deaths):
        path = tmp_path / "r.jsonl"
        hook = ProcessFaultInjector(FaultPlan("torn", 1))
        with RunJournal.create(path, fault_hook=hook) as j:
            j.append("run_start", run_id="r")
            j.append("stage", name="fig2")  # torn: half the bytes + "death"
            assert len(deaths) == 1
        records, _bytes, problems = read_journal(path)
        assert len(records) == 1 and problems  # the torn record is invisible
        with RunJournal.resume(path) as j:
            assert j.truncated_tail and j.next_seq == 1

    def test_enospc_raises_with_journal_valid(self, tmp_path, deaths):
        path = tmp_path / "r.jsonl"
        hook = ProcessFaultInjector(FaultPlan("enospc", 1))
        with RunJournal.create(path, fault_hook=hook) as j:
            j.append("run_start", run_id="r")
            with pytest.raises(OSError, match="No space left"):
                j.append("stage", name="fig2")
            assert not deaths
            j.append("stage", name="fig2")  # tripped once; now succeeds
        records, _bytes, problems = read_journal(path)
        assert len(records) == 2 and problems == []


# ---------------------------------------------------------------------------
# signals and watchdog primitives
# ---------------------------------------------------------------------------


class TestSignals:
    def test_exit_codes(self):
        assert interrupt_exit_code(signal.SIGINT) == 130
        assert interrupt_exit_code(signal.SIGTERM) == 143

    def test_first_signal_defers_second_escalates(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulShutdown() as stop:
            assert not stop.triggered
            os.kill(os.getpid(), signal.SIGINT)
            time.sleep(0.01)  # let the handler run
            assert stop.triggered and stop.signum == signal.SIGINT
            with pytest.raises(RunInterrupted) as info:
                stop.check()
            assert info.value.exit_code == 130
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(0.5)
        # the previous handler is restored on exit
        assert signal.getsignal(signal.SIGINT) is before


class TestWatchdogPrimitives:
    def test_heartbeat_round_trip(self, tmp_path):
        hb = ChunkHeartbeat(tmp_path / "c.hb")
        assert read_heartbeat(tmp_path / "c.hb") is None
        hb.start()
        assert read_heartbeat(tmp_path / "c.hb") == 0
        hb.beat(5)
        assert read_heartbeat(tmp_path / "c.hb") == 5

    def test_queued_chunk_never_hung(self, tmp_path):
        watch = ChunkWatch(tmp_path / "missing.hb")
        assert watch.is_hung(1e9, chunk_timeout_s=0.001) is None

    def test_deadline_classification(self, tmp_path):
        hb = ChunkHeartbeat(tmp_path / "c.hb")
        hb.start()
        watch = ChunkWatch(tmp_path / "c.hb")
        assert watch.is_hung(100.0, chunk_timeout_s=5.0) is None
        hb.beat(1)  # progress does not extend a hard deadline
        assert watch.is_hung(106.0, chunk_timeout_s=5.0) == "deadline"

    def test_stall_classification_resets_on_progress(self, tmp_path):
        hb = ChunkHeartbeat(tmp_path / "c.hb")
        hb.start()
        watch = ChunkWatch(tmp_path / "c.hb")
        assert watch.is_hung(100.0, heartbeat_timeout_s=2.0) is None
        hb.beat(1)
        assert watch.is_hung(103.0, heartbeat_timeout_s=2.0) is None
        assert watch.is_hung(105.5, heartbeat_timeout_s=2.0) == "stalled"

    def test_injected_clock_drives_classification(self, tmp_path):
        # ``is_hung()`` with no explicit ``now`` falls back to the
        # injected clock; cranking it reproduces deadline/stall
        # verdicts without any real elapsed time.
        hb = ChunkHeartbeat(tmp_path / "c.hb")
        hb.start()
        clock = ManualClock(start=50.0)
        watch = ChunkWatch(tmp_path / "c.hb", clock=clock)
        assert watch.is_hung(chunk_timeout_s=5.0) is None
        clock.advance(4.0)
        assert watch.is_hung(chunk_timeout_s=5.0) is None
        clock.advance(1.5)
        assert watch.is_hung(chunk_timeout_s=5.0) == "deadline"

    def test_default_clock_is_monotonic_time(self, tmp_path):
        watch = ChunkWatch(tmp_path / "c.hb")
        assert watch.clock is time.monotonic


# ---------------------------------------------------------------------------
# the runner (in-process)
# ---------------------------------------------------------------------------


class TestRunner:
    def test_cold_then_resume_byte_identical(self, tmp_path):
        scenario = _tiny_scenario()
        store = ArtifactStore(tmp_path / "cache")
        cold = run_study(scenario, store)
        assert not cold.resumed
        assert cold.n_computed == len(cold.stages)
        warm = run_study(scenario, store, resume=True)
        assert warm.resumed
        assert warm.n_verified == len(warm.stages)
        assert warm.document_sha256 == cold.document_sha256
        assert document_json(warm.document) == document_json(cold.document)

    def test_journal_written_and_listed(self, tmp_path):
        scenario = _tiny_scenario()
        store = ArtifactStore(tmp_path / "cache")
        report = run_study(scenario, store)
        rid = run_id_for(scenario)
        assert report.run_id == rid
        assert Path(report.journal_path) == journal_path(store, rid)
        records, _bytes, problems = read_journal(report.journal_path)
        assert problems == []
        assert records[0].type == "run_start"
        assert records[0].get("dataset_key") == dataset_key(scenario)
        assert records[-1].type == "run_end"
        assert len(records) == count_barriers()
        runs = list_runs(store)
        assert [r.run_id for r in runs] == [rid]
        assert runs[0].complete and not runs[0].torn_tail

    def test_corrupt_artifact_recomputed_on_resume(self, tmp_path):
        scenario = _tiny_scenario()
        store = ArtifactStore(tmp_path / "cache")
        cold = run_study(scenario, store)
        # Swap fig5's stored artifact for a valid-but-wrong object: the
        # journaled digest no longer matches, so the resume must drop
        # and recompute it — and still land on the cold document.
        key = artifact_key(dataset_key(scenario), "fig/fig5")
        store.put(key, {"bogus": 1}, "pickle")
        resumed = run_study(scenario, store, resume=True)
        actions = {s.name: s.action for s in resumed.stages}
        assert actions["fig5"] == "recomputed"
        assert actions["fig2"] == "verified"
        assert resumed.document_sha256 == cold.document_sha256

    def test_explicit_run_id_mismatch_refused(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_study(_tiny_scenario(seed=7), store, run_id="run-pinned")
        with pytest.raises(JournalError, match="refusing to resume"):
            run_study(
                _tiny_scenario(seed=8), store, resume=True,
                run_id="run-pinned",
            )

    def test_auto_id_stale_journal_starts_fresh(self, tmp_path):
        # Same path, different dataset (hand-built stale journal): the
        # auto-derived id starts over instead of erroring.
        scenario = _tiny_scenario()
        store = ArtifactStore(tmp_path / "cache")
        path = journal_path(store, run_id_for(scenario))
        with RunJournal.create(path) as j:
            j.append("run_start", run_id="other", dataset_key="stale")
        report = run_study(scenario, store, resume=True)
        assert not report.resumed
        assert report.document_sha256

    def test_parallel_run_matches_serial(self, tmp_path):
        scenario = _tiny_scenario()
        serial = run_study(scenario, ArtifactStore(tmp_path / "a"))
        parallel = run_study(
            scenario, ArtifactStore(tmp_path / "b"), n_workers=2,
            chunk_timeout_s=300.0,
        )
        assert parallel.document_sha256 == serial.document_sha256

    def test_interrupt_checked_at_barrier(self, tmp_path, monkeypatch):
        # Deliver SIGTERM before the run starts: the first barrier
        # check must raise with the journal still consistent.
        scenario = _tiny_scenario()
        store = ArtifactStore(tmp_path / "cache")
        original_enter = GracefulShutdown.__enter__

        def enter_and_signal(self):
            stop = original_enter(self)
            os.kill(os.getpid(), signal.SIGTERM)
            return stop

        monkeypatch.setattr(GracefulShutdown, "__enter__", enter_and_signal)
        with pytest.raises(RunInterrupted) as info:
            run_study(scenario, store)
        assert info.value.exit_code == 143
        monkeypatch.undo()
        report = run_study(scenario, store, resume=True)
        assert report.document_sha256


# ---------------------------------------------------------------------------
# real subprocesses: interrupts and the chaos sweep
# ---------------------------------------------------------------------------


def _run_argv(cache_dir: Path, out: Path) -> list:
    return [
        sys.executable, "-m", "repro", "run",
        "--days", "3", "--seed", "7",
        "--cache-dir", str(cache_dir), "--out", str(out),
    ]


class TestInterruptSubprocess:
    @pytest.mark.parametrize(
        "signum", [signal.SIGINT, signal.SIGTERM],
        ids=["sigint", "sigterm"],
    )
    def test_signal_mid_run_then_resume(self, tmp_path, signum):
        cache = tmp_path / "cache"
        out = tmp_path / "doc.json"
        rid = run_id_for(_tiny_scenario())
        jpath = cache / "runs" / f"{rid}.jsonl"
        proc = subprocess.Popen(
            _run_argv(cache, out),
            env=_cli_env(**{STAGE_DELAY_ENV: "0.2"}),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        # Wait (deterministically) until the run is a few barriers in,
        # then strike: the per-stage delay guarantees plenty of stages
        # remain, so the signal always lands mid-run.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if len(read_journal(jpath)[0]) >= 3:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("run never reached barrier 3")
        proc.send_signal(signum)
        _stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == interrupt_exit_code(signum), stderr
        assert "interrupted" in stderr
        assert not out.exists()

        # The store holds no staging debris and the journal is a valid,
        # partial prefix of the run.
        store = ArtifactStore(cache)
        debris = [p for p in store._iter_files() if ".tmp-" in p.name]
        assert debris == []
        assert journal_path(store, rid) == jpath
        records, _bytes, problems = read_journal(jpath)
        assert problems == []
        assert 0 < len(records) < count_barriers()

        resumed = subprocess.run(
            [*_run_argv(cache, out), "--resume"],
            env=_cli_env(), capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed run" in resumed.stdout
        reference = run_study(
            _tiny_scenario(), ArtifactStore(tmp_path / "ref")
        )
        assert out.read_text() == document_json(reference.document)


class TestChaosSweep:
    def test_representative_fault_points(self, tmp_path):
        """kill/torn/enospc at an early and the final barrier, each in a
        real subprocess, resumes byte-identically (CI sweeps them all)."""
        report = run_sweep(
            ["--days", "3", "--seed", "7"],
            tmp_path / "sweep",
            modes=FAULT_MODES,
            barriers=(1, count_barriers() - 1),
            timeout_s=300.0,
        )
        assert report.n_barriers == count_barriers()
        assert report.ok, [
            (f.label, f.detail) for f in report.failures
        ]
        assert len(report.results) == len(FAULT_MODES) * 2


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_run_requires_store(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        rc = main(["run", "--days", "3", "--no-cache"])
        assert rc == 2
        assert "cache" in capsys.readouterr().err

    def test_run_and_list_runs(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache"
        out = tmp_path / "doc.json"
        rc = main([
            "run", "--days", "3", "--seed", "7",
            "--cache-dir", str(cache), "--out", str(out), "--quiet",
        ])
        assert rc == 0
        assert json.loads(out.read_text())["figures"]
        rc = main([
            "run", "--cache-dir", str(cache), "--list-runs",
        ])
        assert rc == 0
        listing = capsys.readouterr().out
        assert "complete" in listing

    def test_chaos_run_rejects_bad_mode(self, capsys):
        from repro.cli import main

        rc = main(["chaos-run", "--modes", "nuke"])
        assert rc == 2
        assert "nuke" in capsys.readouterr().err
