"""Shared fixtures.

Two datasets are exercised by the suite:

* ``smoke_dataset`` — a fast 45-day scenario for module-level tests;
* ``paper_dataset`` — the full 21-month paper scenario, simulated once
  per session, for the end-to-end observation suite.
"""

import pytest

from repro.sim import Scenario, default_dataset


@pytest.fixture(scope="session")
def smoke_dataset():
    return default_dataset(Scenario.smoke())


@pytest.fixture(scope="session")
def paper_dataset():
    return default_dataset(Scenario.paper())


@pytest.fixture(scope="session")
def bare_machine():
    from repro.topology.machine import TitanMachine

    return TitanMachine()
