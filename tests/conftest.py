"""Shared fixtures and determinism guards.

Two datasets are exercised by the suite:

* ``smoke_dataset`` — a fast 45-day scenario for module-level tests;
* ``paper_dataset`` — the full 21-month paper scenario, simulated once
  per session, for the end-to-end observation suite.

Two autouse guards provide the *runtime* complement to the static
RL001/RL002 lint rules (see :mod:`repro.lint`): any test whose code
path reads the wall clock from inside ``repro.sim`` / ``repro.faults``
/ ``repro.workload`` / ``repro.telemetry`` / ``repro.chaos``, or that
causes one of those modules to import the stdlib ``random`` module,
fails.
"""

import sys
import time as _time_module

import pytest

from repro.sim import Scenario, default_dataset

#: Package prefixes that must stay a pure function of (scenario, seed) —
#: keep in sync with repro.lint.rules._DETERMINISTIC_DIRS.
_DETERMINISTIC_PREFIXES = (
    "repro.sim",
    "repro.faults",
    "repro.workload",
    "repro.telemetry",
    "repro.chaos",
    "repro.cache",
    "repro.stream",
)

_DETERMINISTIC_PATH_PARTS = tuple(
    f"/repro/{p.split('.', 1)[1]}/" for p in _DETERMINISTIC_PREFIXES
)


@pytest.fixture(autouse=True, scope="session")
def _wall_clock_guard():
    """Fail any wall-clock ``time.*`` read made from simulator code.

    ``time.time`` (and friends) are wrapped for the whole session with
    a caller check: reads from files under ``repro/sim`` etc. raise.
    Everything else (pytest's own timing, benchmarks) passes through.
    """

    def _guard(name, real):
        def wrapper(*args, **kwargs):
            caller = sys._getframe(1).f_code.co_filename.replace("\\", "/")
            if any(part in caller for part in _DETERMINISTIC_PATH_PARTS):
                raise AssertionError(
                    f"wall-clock read time.{name}() from deterministic "
                    f"simulator path {caller}; use simulator timestamps "
                    "(repro.units) — see RL002 in docs/LINT.md"
                )
            return real(*args, **kwargs)

        wrapper.__name__ = name
        return wrapper

    patched = {}
    for name in ("time", "time_ns", "monotonic", "perf_counter"):
        real = getattr(_time_module, name)
        patched[name] = real
        setattr(_time_module, name, _guard(name, real))
    try:
        yield
    finally:
        for name, real in patched.items():
            setattr(_time_module, name, real)


@pytest.fixture(autouse=True)
def _no_stdlib_random_in_sim():
    """Fail the test if a deterministic module imported stdlib random."""
    yield
    import random as _random

    for name, mod in list(sys.modules.items()):
        if mod is None or not name.startswith(_DETERMINISTIC_PREFIXES):
            continue
        for attr, value in list(vars(mod).items()):
            if value is _random:
                raise AssertionError(
                    f"{name} imports the stdlib `random` module (as "
                    f"{attr!r}); all randomness must flow through "
                    "RngTree-derived numpy Generators — see RL001 in "
                    "docs/LINT.md"
                )


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current pipeline "
             "instead of asserting against them (use after an "
             "intentional pipeline change, together with a "
             "PIPELINE_EPOCH bump; see tests/golden/README.md)",
    )


@pytest.fixture(scope="session")
def regen_golden(request):
    """True when the run should regenerate the golden trace files."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture(scope="session")
def smoke_dataset():
    return default_dataset(Scenario.smoke())


@pytest.fixture(scope="session")
def paper_dataset():
    return default_dataset(Scenario.paper())


@pytest.fixture(scope="session")
def bare_machine():
    from repro.topology.machine import TitanMachine

    return TitanMachine()
