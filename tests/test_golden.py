"""Golden-trace regression suite: the pipeline's bit-for-bit contract.

The canonical scenario (``Scenario.paper()``, seed 20131001) is run
through every figure, the Observation 1–14 scorecard and the headline
statistics, and the resulting :func:`~repro.core.golden.golden_document`
is compared against the committed ``tests/golden/paper.json``:

* **cold** — a store-less :class:`TitanStudy` straight off the session
  dataset;
* **parallel** — ``figs_all(n_workers=2)`` fanning figure computation
  out over spawned workers that warm-load the dataset from an artifact
  store;
* **warm** — a fresh study whose dataset *and* figure results all come
  back from the artifact store populated by the parallel run.

All three must agree with the golden file on every figure digest
(SHA-256 of the canonical ``float.hex`` encoding — bit-equality of
every array element), every scorecard verdict, and every headline
statistic.

After an *intentional* pipeline change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --regen-golden

and bump ``repro.cache.keys.PIPELINE_EPOCH`` in the same commit (see
tests/golden/README.md).
"""

import json
from pathlib import Path

import pytest

from repro.cache import ArtifactStore, persist_dataset, load_dataset
from repro.core.golden import (
    GOLDEN_VERSION,
    golden_diff,
    golden_document,
)
from repro.core.study import FIGURES, TitanStudy

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "paper.json"

#: Scorecard entries covering the paper's Observations 1-14 (adjacent
#: observations sharing a single measurable claim are merged in
#: repro.core.observations.observation_scorecard).
N_OBSERVATION_CHECKS = 12


@pytest.fixture(scope="module")
def golden_store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("golden-store"))


@pytest.fixture(scope="module")
def cold_document(paper_dataset):
    """Store-less serial run: the reference the others must match."""
    return golden_document(TitanStudy(paper_dataset))


@pytest.fixture(scope="module")
def parallel_document(paper_dataset, golden_store):
    """``figs_all(n_workers=2)`` over a freshly persisted store.

    This both exercises the parallel fan-out (workers warm-load the
    dataset by key) and populates the figure artifacts the warm run
    reads back.
    """
    persist_dataset(golden_store, paper_dataset)
    study = TitanStudy(paper_dataset, store=golden_store)
    figs = study.figs_all(n_workers=2)
    assert set(figs) == set(FIGURES)
    return golden_document(study)


@pytest.fixture(scope="module")
def warm_document(parallel_document, paper_dataset, golden_store):
    """Everything — dataset layers and figures — read from the store."""
    cached = load_dataset(golden_store, paper_dataset.scenario)
    assert cached is not None, "parallel run should have persisted layers"
    assert cached.provenance == "cache"
    study = TitanStudy(cached, store=golden_store)
    doc = golden_document(study)
    # The figures genuinely came from the artifact store, not compute.
    assert golden_store.stats.hits >= len(FIGURES)
    return doc


class TestGoldenFile:
    def test_golden_file_exists(self):
        assert GOLDEN_FILE.exists(), (
            "tests/golden/paper.json missing; generate it with "
            "`pytest tests/test_golden.py --regen-golden`"
        )

    def test_schema(self):
        doc = json.loads(GOLDEN_FILE.read_text())
        assert doc["version"] == GOLDEN_VERSION
        assert set(doc["figures"]) == set(FIGURES)
        assert len(doc["scorecard"]) == N_OBSERVATION_CHECKS
        assert doc["scenario"]["seed"] == 20131001
        for entry in doc["figures"].values():
            assert len(entry["sha256"]) == 64

    def test_scorecard_all_pass_in_golden(self):
        """The committed contract: the paper scenario reproduces all 14."""
        doc = json.loads(GOLDEN_FILE.read_text())
        failing = [c["name"] for c in doc["scorecard"] if not c["ok"]]
        assert failing == [], f"golden scorecard has failures: {failing}"


class TestAgainstGolden:
    def test_cold_matches_golden(self, cold_document, regen_golden):
        if regen_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            GOLDEN_FILE.write_text(
                json.dumps(cold_document, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip("regenerated tests/golden/paper.json")
        expected = json.loads(GOLDEN_FILE.read_text())
        problems = golden_diff(expected, cold_document)
        assert not problems, (
            "pipeline drifted from tests/golden/paper.json:\n"
            + "\n".join(problems)
            + "\n(if intentional: --regen-golden and bump PIPELINE_EPOCH)"
        )

    def test_parallel_matches_cold(self, cold_document, parallel_document):
        assert golden_diff(cold_document, parallel_document) == []

    def test_warm_matches_cold(self, cold_document, warm_document):
        assert golden_diff(cold_document, warm_document) == []

    def test_documents_byte_identical(
        self, cold_document, parallel_document, warm_document
    ):
        """Stronger than golden_diff: the serialized JSON is identical."""
        cold = json.dumps(cold_document, sort_keys=True)
        assert json.dumps(parallel_document, sort_keys=True) == cold
        assert json.dumps(warm_document, sort_keys=True) == cold


class TestGoldenDiffReporting:
    """golden_diff must *explain* drift, not just detect it."""

    def test_digest_drift_reported_with_summary(self, cold_document):
        doctored = json.loads(json.dumps(cold_document))
        entry = doctored["figures"]["fig2"]
        entry["sha256"] = "0" * 64
        for key in entry["summary"]:
            if isinstance(entry["summary"][key], float):
                entry["summary"][key] += 1.0
                break
        problems = golden_diff(cold_document, doctored)
        assert any("fig2" in p and "digest drift" in p for p in problems)

    def test_scorecard_flip_reported(self, cold_document):
        doctored = json.loads(json.dumps(cold_document))
        doctored["scorecard"][0]["ok"] = not doctored["scorecard"][0]["ok"]
        problems = golden_diff(cold_document, doctored)
        assert any("scorecard" in p for p in problems)

    def test_headline_drift_reported(self, cold_document):
        doctored = json.loads(json.dumps(cold_document))
        key = next(iter(doctored["headline"]))
        doctored["headline"][key] = -1.0
        problems = golden_diff(cold_document, doctored)
        assert any("headline" in p and key in p for p in problems)

    def test_missing_figure_reported(self, cold_document):
        doctored = json.loads(json.dumps(cold_document))
        doctored["figures"].pop("fig21")
        problems = golden_diff(cold_document, doctored)
        assert any("fig21" in p and "missing" in p for p in problems)

    def test_identical_documents_clean(self, cold_document):
        assert golden_diff(cold_document, cold_document) == []
