"""Tests for SWF interop and the JSON study export."""

import json

import numpy as np
import pytest

from repro.core import TitanStudy
from repro.core.export import SUMMARY_FORMAT, study_summary, write_summary_json
from repro.units import HOUR
from repro.workload.jobs import JobTraceBuilder
from repro.workload.swf import from_swf, reschedule, to_swf


def make_trace():
    b = JobTraceBuilder()
    b.add(user=3, submit=100.0, start=150.0, end=150.0 + 2 * HOUR,
          gpu_util=0.5, max_memory_gb=8.0, total_memory=16.0, n_apruns=2,
          runs=[(0, 64)])
    b.add(user=5, submit=500.0, start=500.0, end=500.0 + HOUR,
          gpu_util=0.9, max_memory_gb=2.0, total_memory=2.0, n_apruns=1,
          runs=[(64, 128)])
    return b.freeze()


class TestSwf:
    def test_export_format(self):
        text = to_swf(make_trace(), header_note="unit test")
        lines = [l for l in text.splitlines() if not l.startswith(";")]
        assert len(lines) == 2
        fields = lines[0].split()
        assert len(fields) == 18
        assert fields[0] == "1"  # job number
        assert fields[1] == "100"  # submit
        assert fields[2] == "50"  # wait
        assert fields[3] == str(2 * 3600)  # runtime
        assert fields[4] == "64"  # processors
        assert fields[11] == "4"  # user id (+1)
        assert "; unit test" in text

    def test_roundtrip_preserves_shape(self):
        trace = make_trace()
        back = from_swf(to_swf(trace))
        assert len(back) == 2
        assert np.array_equal(back.n_nodes, trace.n_nodes)
        assert np.allclose(back.submit, np.round(trace.submit))
        assert np.allclose(back.walltime_s, np.round(trace.walltime_s))
        assert np.array_equal(back.user, trace.user)
        assert np.allclose(back.max_memory_gb, trace.max_memory_gb, rtol=1e-4)

    def test_rescheduled_allocations_valid(self):
        back = reschedule(make_trace(), capacity=1000)
        back.validate_allocations(1000)

    def test_comment_and_blank_lines_skipped(self):
        text = "; header\n\n" + to_swf(make_trace())
        assert len(from_swf(text)) == 2

    def test_cancelled_jobs_skipped(self):
        line = " ".join(["9", "0", "0", "-1", "4"] + ["-1"] * 13)
        assert len(from_swf(line)) == 0

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            from_swf("1 2 3")

    def test_oversized_jobs_clamped(self):
        line = " ".join(
            ["1", "0", "0", "100", "999999", "-1", "-1", "-1", "-1", "-1",
             "-1", "7"] + ["-1"] * 6
        )
        trace = from_swf(line, capacity=500)
        assert trace.n_nodes[0] == 500

    def test_smoke_trace_roundtrip(self, smoke_dataset):
        trace = smoke_dataset.trace
        back = from_swf(to_swf(trace))
        assert len(back) == len(trace)
        assert np.array_equal(back.n_nodes, trace.n_nodes)
        assert np.array_equal(back.user, trace.user)


class TestJsonExport:
    @pytest.fixture(scope="class")
    def summary(self, smoke_dataset):
        return study_summary(TitanStudy(smoke_dataset))

    def test_format_and_keys(self, summary):
        assert summary["format"] == SUMMARY_FORMAT
        for key in ("scenario", "dbe", "off_the_bus", "retirement",
                    "xid13", "sbe", "correlations", "workload"):
            assert key in summary

    def test_json_serializable(self, summary):
        text = json.dumps(summary)
        assert json.loads(text) == summary

    def test_values_match_study(self, smoke_dataset, summary):
        study = TitanStudy(smoke_dataset)
        assert summary["dbe"]["total"] == study.fig2().total
        assert summary["sbe"]["cards_affected"] == study.fig14().n_cards_with_sbe
        assert len(summary["dbe"]["monthly"]) == 21

    def test_write_json(self, smoke_dataset, tmp_path):
        path = write_summary_json(TitanStudy(smoke_dataset), tmp_path / "s.json")
        loaded = json.loads(path.read_text())
        assert loaded["format"] == SUMMARY_FORMAT


class TestSwfDrivesInjection:
    def test_imported_trace_feeds_the_injectors(self, smoke_dataset):
        """Bring-your-own-workload path: an SWF import (rescheduled on
        the torus) drives fault injection exactly like a generated
        trace."""
        from repro.faults.injector import FaultInjector
        from repro.faults.rates import RateConfig
        from repro.gpu.fleet import GPUFleet
        from repro.rng import RngTree
        from repro.topology.thermal import ThermalModel
        from repro.workload.users import UserPopulation

        ds = smoke_dataset
        trace = from_swf(to_swf(ds.trace))
        tree = RngTree(99)
        rates = RateConfig()
        fleet = GPUFleet(
            ds.machine.n_gpus,
            tree.fresh_generator("fleet"),
            retirement_active_from=rates.retirement_active_from,
        )
        thermal = ThermalModel(ds.machine.cage, tree.fresh_generator("th"))
        users = UserPopulation(
            int(trace.user.max()) + 1, tree.fresh_generator("users")
        )
        injector = FaultInjector(
            ds.machine, fleet, thermal, users, rates,
            tree.fresh_generator("hw"), tree.fresh_generator("sw"),
            tree.fresh_generator("sbe"), tree.fresh_generator("casc"),
        )
        end = float(trace.end.max()) + 1.0
        result = injector.run(trace, 0.0, end)
        assert len(result.events) > 0
        assert result.sbe_by_job.shape == (len(trace),)
