"""Tests for repro.chaos: deterministic corruption + graceful degradation.

Covers the PR's acceptance contract:

* same ``(seed, config, input)`` → byte-identical corrupted output;
* at ≤ 1 % line corruption the Observation scorecard is identical to
  the clean run;
* at 20 % the pipeline completes with degradation annotations instead
  of raising;
* coverage-normalized MTBF on a gap-injected log stays within 5 % of
  the clean estimate (naive MTBF overstates it).
"""

import numpy as np
import pytest

from repro.chaos import ChaosConfig, CorruptionInjector, run_degradation
from repro.chaos import modes
from repro.core.temporal import mtbf_hours
from repro.rng import RngTree
from repro.telemetry.coverage import (
    LOW_COVERAGE_THRESHOLD,
    ObservedWindows,
    infer_outage_windows,
)
from repro.telemetry.parser import ConsoleLogParser
from repro.units import DAY, HOUR, timestamp_to_datetime


@pytest.fixture(scope="module")
def sample_text(smoke_dataset):
    """A few thousand real rendered console lines (fast to corrupt)."""
    lines = smoke_dataset.console_text.splitlines()[:3000]
    return "\n".join(lines) + "\n"


def _rng(name: str = "test") -> np.random.Generator:
    return RngTree(123).fresh_generator(name)


def _make_lines(n: int = 20) -> list[str]:
    return [
        timestamp_to_datetime(i * HOUR).strftime("%Y-%m-%dT%H:%M:%S.%f")
        + f" c0-0c0s{i % 8}n{i % 4} GPU XID 48 double-bit ECC error"
        for i in range(n)
    ]


class TestChaosConfig:
    def test_default_is_identity(self):
        assert ChaosConfig().total_line_rate == 0.0

    def test_uniform_splits_level(self):
        config = ChaosConfig.uniform(0.05)
        assert config.total_line_rate == pytest.approx(0.05)
        assert config.truncate_rate == config.garble_rate

    def test_uniform_rejects_bad_level(self):
        with pytest.raises(ValueError):
            ChaosConfig.uniform(-0.1)
        with pytest.raises(ValueError):
            ChaosConfig.uniform(1.5)

    def test_injector_validates_config(self):
        with pytest.raises(ValueError):
            CorruptionInjector(ChaosConfig(garble_rate=2.0))
        with pytest.raises(ValueError):
            CorruptionInjector(ChaosConfig(n_outages=-1))

    def test_outages_only(self):
        config = ChaosConfig.outages_only(3, 2 * HOUR)
        assert config.n_outages == 3
        assert config.total_line_rate == 0.0


class TestInjectorDeterminism:
    CONFIG = ChaosConfig.uniform(0.05)

    def test_byte_identical_same_seed(self, sample_text):
        a = CorruptionInjector(self.CONFIG, seed=42).corrupt_text(sample_text)
        b = CorruptionInjector(self.CONFIG, seed=42).corrupt_text(sample_text)
        assert a.text == b.text
        assert a.counts == b.counts

    def test_injector_is_stateless_across_calls(self, sample_text):
        injector = CorruptionInjector(self.CONFIG, seed=42)
        assert (
            injector.corrupt_text(sample_text).text
            == injector.corrupt_text(sample_text).text
        )

    def test_different_seed_differs(self, sample_text):
        a = CorruptionInjector(self.CONFIG, seed=1).corrupt_text(sample_text)
        b = CorruptionInjector(self.CONFIG, seed=2).corrupt_text(sample_text)
        assert a.text != b.text

    def test_zero_config_is_identity(self, sample_text):
        result = CorruptionInjector(ChaosConfig(), seed=7).corrupt_text(
            sample_text
        )
        assert result.text == sample_text
        assert result.counts == {}
        assert result.n_lines_in == result.n_lines_out

    def test_counts_are_ground_truth(self, sample_text):
        result = CorruptionInjector(self.CONFIG, seed=3).corrupt_text(
            sample_text
        )
        known = {"truncate", "garble", "splice", "duplicate", "displace",
                 "skew", "outage"}
        assert set(result.counts) <= known
        assert result.total_corrupted == sum(result.counts.values())
        assert result.total_corrupted > 0
        # 5 % split over six modes on 3000 lines: each mode ~30 hits.
        assert 5 <= result.counts["garble"] <= 90

    def test_outage_windows_reported(self, sample_text):
        injector = CorruptionInjector(
            ChaosConfig.outages_only(2, 12 * HOUR), seed=11
        )
        result = injector.corrupt_text(sample_text)
        assert result.outage_windows
        assert result.counts.get("outage", 0) > 0
        assert result.n_lines_out < result.n_lines_in

    def test_trailing_newline_preserved(self, sample_text):
        result = CorruptionInjector(self.CONFIG, seed=5).corrupt_text(
            sample_text
        )
        assert result.text.endswith("\n")


class TestModes:
    def test_truncate_shortens(self):
        lines = _make_lines()
        out, n = modes.truncate_lines(_rng(), lines, 1.0)
        assert n == len(lines)
        assert all(len(o) < len(l) for o, l in zip(out, lines))

    def test_garble_preserves_length(self):
        lines = _make_lines()
        out, n = modes.garble_lines(_rng(), lines, 1.0)
        assert n == len(lines)
        assert all(len(o) == len(l) for o, l in zip(out, lines))
        assert out != lines

    def test_splice_merges_pairs(self):
        lines = _make_lines(10)
        out, n = modes.splice_lines(_rng(), lines, 1.0)
        assert n == 5
        assert len(out) == 5
        # Each spliced line ends with a complete successor record.
        assert all(o.endswith(lines[2 * i + 1]) for i, o in enumerate(out))

    def test_duplicate_doubles(self):
        lines = _make_lines(6)
        out, n = modes.duplicate_lines(_rng(), lines, 1.0)
        assert n == 6
        assert len(out) == 12
        assert out[0] == out[1] == lines[0]

    def test_displace_preserves_multiset(self):
        lines = _make_lines(40)
        out, n = modes.displace_lines(_rng(), lines, 0.5, max_offset=8)
        assert n > 0
        assert sorted(out) == sorted(lines)
        assert out != lines

    def test_skew_shifts_stamps_only(self):
        lines = _make_lines(12)
        out, n = modes.skew_timestamps(_rng(), lines, 1.0, max_skew_s=60.0)
        assert n == len(lines)
        before = modes.line_timestamps(lines)
        after = modes.line_timestamps(out)
        assert not np.isnan(after).any()
        assert np.all(np.abs(after - before) <= 60.0)
        # Bodies survive byte-for-byte.
        assert all(o[26:] == l[26:] for o, l in zip(out, lines))

    def test_zero_rate_is_identity(self):
        lines = _make_lines(5)
        for fn in (modes.truncate_lines, modes.garble_lines,
                   modes.splice_lines, modes.duplicate_lines):
            out, n = fn(_rng(), lines, 0.0)
            assert out == lines and n == 0

    def test_line_timestamps_nan_on_garbage(self):
        stamps = modes.line_timestamps(["garbage", _make_lines(1)[0]])
        assert np.isnan(stamps[0]) and not np.isnan(stamps[1])

    def test_drop_outage_windows(self):
        lines = _make_lines(20) + ["no stamp here"]
        window = (5 * HOUR - 1.0, 10 * HOUR + 1.0)  # stamps 5..10
        out, n = modes.drop_outage_windows(lines, (window,))
        assert n == 6
        assert len(out) == len(lines) - 6
        assert "no stamp here" in out  # stampless lines carry no time

    def test_drop_merges_overlapping_windows(self):
        lines = _make_lines(20)
        out, n = modes.drop_outage_windows(
            lines, ((4 * HOUR - 1, 8 * HOUR), (6 * HOUR, 9 * HOUR + 1))
        )
        assert n == 6  # stamps 4..9

    def test_draw_outage_windows_bounded(self):
        windows = modes.draw_outage_windows(
            _rng(), 0.0, 10 * DAY, n_outages=4, mean_duration_s=6 * HOUR
        )
        assert len(windows) == 4
        assert windows == tuple(sorted(windows))
        for lo, hi in windows:
            assert 0.0 <= lo < hi <= 10 * DAY


class TestObservedWindows:
    def test_full_coverage(self):
        cov = ObservedWindows.full(0.0, 100.0)
        assert cov.coverage_fraction == 1.0
        assert cov.observed_seconds == 100.0
        assert not cov.is_low()
        assert cov.contains(np.array([0.0, 50.0])).all()

    def test_from_outages_complement(self):
        cov = ObservedWindows.from_outages(
            0.0, 100.0, [(10.0, 20.0), (15.0, 30.0), (90.0, 200.0)]
        )
        assert cov.windows == ((0.0, 10.0), (30.0, 90.0))
        assert cov.coverage_fraction == pytest.approx(0.7)
        assert cov.n_outages == 2
        mask = cov.contains(np.array([5.0, 15.0, 50.0, 95.0]))
        assert mask.tolist() == [True, False, True, False]

    def test_half_open_boundaries(self):
        cov = ObservedWindows.from_windows(0.0, 100.0, [(0.0, 10.0)])
        mask = cov.contains(np.array([0.0, 10.0]))
        assert mask.tolist() == [True, False]

    def test_total_outage(self):
        cov = ObservedWindows.from_outages(0.0, 100.0, [(0.0, 100.0)])
        assert cov.coverage_fraction == 0.0
        assert not cov.contains(np.array([50.0])).any()

    def test_low_coverage_threshold(self):
        cov = ObservedWindows.from_outages(0.0, 100.0, [(0.0, 15.0)])
        assert cov.is_low()
        assert not cov.is_low(threshold=0.8)
        assert 0.0 < LOW_COVERAGE_THRESHOLD < 1.0

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            ObservedWindows.full(10.0, 10.0)

    def test_infer_requires_positive_gap(self):
        with pytest.raises(ValueError):
            infer_outage_windows([1.0], 0.0, 10.0, min_gap_s=0.0)

    def test_infer_empty_stream_is_total_outage(self):
        cov = infer_outage_windows([], 0.0, 100.0, min_gap_s=10.0)
        assert cov.coverage_fraction == 0.0


class TestCoverageCorrectedMtbf:
    """Acceptance: gap-corrected MTBF within 5 % of the clean estimate."""

    def test_outage_injection_and_correction(self, smoke_dataset):
        from repro.errors.xid import ErrorType

        sc = smoke_dataset.scenario
        span = sc.end - sc.start
        # The DBE stream is the paper's MTBF subject and is not bursty
        # (Obs 1), so its rate is stationary enough for the 5 % bound;
        # the all-events stream contains XID 13 storms and is not.
        clean = mtbf_hours(
            smoke_dataset.parsed_events.of_type(ErrorType.DBE), span_s=span
        )

        injector = CorruptionInjector(
            ChaosConfig.outages_only(3, 2 * DAY), seed=99
        )
        result = injector.corrupt_text(smoke_dataset.console_text)
        assert result.outage_windows

        log, stats = ConsoleLogParser(smoke_dataset.machine).parse_text(
            result.text
        )
        log = log.sorted_by_time().of_type(ErrorType.DBE)
        coverage = ObservedWindows.from_outages(
            sc.start, sc.end, result.outage_windows
        )
        assert coverage.coverage_fraction < 1.0

        corrected = mtbf_hours(log, coverage=coverage)
        naive = mtbf_hours(log, span_s=span)
        assert corrected == pytest.approx(clean, rel=0.05)
        assert naive > corrected  # gap bias overstates MTBF

    def test_inferred_coverage_matches_ground_truth(self, smoke_dataset):
        """Silence-based inference finds injected multi-day outages.

        The inferred windows shrink each outage by ``min_gap_s`` (half
        a threshold of slack at each edge), so inferred coverage sits
        slightly *above* ground truth — bounded below by the truth and
        above by truth + n_outages x min_gap / span.
        """
        sc = smoke_dataset.scenario
        min_gap = 2 * DAY  # above the stream's largest natural silence
        injector = CorruptionInjector(
            ChaosConfig.outages_only(2, 6 * DAY), seed=17
        )
        result = injector.corrupt_text(smoke_dataset.console_text)
        log, _ = ConsoleLogParser(smoke_dataset.machine).parse_text(
            result.text
        )
        truth = ObservedWindows.from_outages(
            sc.start, sc.end, result.outage_windows
        )
        inferred = infer_outage_windows(
            np.sort(log.time), sc.start, sc.end, min_gap_s=min_gap
        )
        assert inferred.n_outages >= 1
        slack = (inferred.n_outages * min_gap) / (sc.end - sc.start)
        assert (
            truth.coverage_fraction - 0.02
            <= inferred.coverage_fraction
            <= truth.coverage_fraction + slack + 0.02
        )

    def test_clean_stream_infers_full_coverage(self, smoke_dataset):
        sc = smoke_dataset.scenario
        cov = infer_outage_windows(
            np.sort(smoke_dataset.parsed_events.time),
            sc.start,
            sc.end,
            min_gap_s=2 * DAY,
        )
        assert cov.coverage_fraction == pytest.approx(1.0, abs=0.02)


class TestDegradationCurve:
    """The graceful-degradation acceptance contract, end to end."""

    @pytest.fixture(scope="class")
    def curve(self, smoke_dataset):
        return run_degradation(
            dataset=smoke_dataset,
            levels=(0.001, 0.01, 0.20),
            seed=20131001,
        )

    def test_baseline_forced_in_and_sorted(self, curve):
        levels = [p.level for p in curve.points]
        assert levels == sorted(levels)
        assert curve.baseline.level == 0.0
        assert not curve.baseline.degraded
        assert curve.baseline.corrupt_fraction == 0.0

    def test_scorecard_identical_at_one_percent(self, curve):
        """≤ 1 % corruption must not flip any Observation check."""
        for point in curve.points:
            if point.level <= 0.01:
                assert curve.flips_at(point) == []
        assert curve.max_stable_level() >= 0.01

    def test_twenty_percent_completes_with_annotations(self, curve):
        point = curve.points[-1]
        assert point.level == pytest.approx(0.20)
        # The pipeline completed: a full scorecard exists and the
        # damage is measured, whether or not the budget tripped.
        assert len(point.checks) == len(curve.baseline.checks)
        assert point.corrupt_fraction > 0.0
        assert point.parsed_events > 0
        assert point.counts  # injector ground truth travels with it

    def test_resync_recovered_lines(self, curve):
        assert curve.points[-1].resynced_lines > 0

    def test_first_flip_levels_structure(self, curve):
        flips = curve.first_flip_levels()
        assert set(flips) == {c.name for c in curve.baseline.checks}
        for level in flips.values():
            assert level is None or level in (0.001, 0.01, 0.20)
