"""Tests for Weibull fitting, exponentiality testing, survival analysis."""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.reliability import (
    exponentiality_test,
    fit_weibull,
    kaplan_meier,
    project_fleet_mtbf,
)
from repro.rng import RngTree


def rng(name="rel"):
    return RngTree(8).fresh_generator(name)


class TestWeibullFit:
    def test_recovers_exponential(self):
        g = rng("exp")
        gaps = g.exponential(500.0, size=4000)
        fit = fit_weibull(gaps)
        assert fit.shape == pytest.approx(1.0, abs=0.05)
        assert fit.scale == pytest.approx(500.0, rel=0.05)
        assert not fit.clustered or fit.shape > 0.95

    def test_recovers_clustered(self):
        g = rng("clu")
        shape, scale = 0.6, 1000.0
        gaps = scale * g.weibull(shape, size=4000)
        fit = fit_weibull(gaps)
        assert fit.shape == pytest.approx(shape, abs=0.05)
        assert fit.scale == pytest.approx(scale, rel=0.08)
        assert fit.clustered

    def test_recovers_wearout(self):
        g = rng("wear")
        gaps = 100.0 * g.weibull(2.5, size=4000)
        fit = fit_weibull(gaps)
        assert fit.shape == pytest.approx(2.5, abs=0.15)

    def test_matches_scipy_fit(self):
        g = rng("scipy")
        gaps = 300.0 * g.weibull(0.8, size=2000)
        ours = fit_weibull(gaps)
        shape_sp, _, scale_sp = sps.weibull_min.fit(gaps, floc=0.0)
        assert ours.shape == pytest.approx(shape_sp, rel=0.02)
        assert ours.scale == pytest.approx(scale_sp, rel=0.02)

    def test_mean_formula(self):
        fit = fit_weibull(rng("mean").exponential(100.0, size=2000))
        assert fit.mean == pytest.approx(
            fit.scale * math.gamma(1 + 1 / fit.shape)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_weibull(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            fit_weibull(np.array([0.0, 0.0, 0.0]))


class TestExponentialityTest:
    def test_accepts_exponential(self):
        g = rng("ks1")
        gaps = g.exponential(100.0, size=400)
        _, p = exponentiality_test(gaps, g, n_bootstrap=200)
        assert p > 0.05

    def test_rejects_clustered(self):
        g = rng("ks2")
        gaps = 100.0 * g.weibull(0.5, size=400)
        _, p = exponentiality_test(gaps, g, n_bootstrap=200)
        assert p < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            exponentiality_test(np.array([1.0]), rng())


class TestKaplanMeier:
    def test_no_censoring_matches_ecdf(self):
        durations = np.array([1.0, 2.0, 3.0, 4.0])
        curve = kaplan_meier(durations, np.ones(4, dtype=bool))
        assert curve.at(0.5) == 1.0
        assert curve.at(1.0) == pytest.approx(0.75)
        assert curve.at(2.5) == pytest.approx(0.5)
        assert curve.at(10.0) == pytest.approx(0.0)
        assert curve.median_survival() == 2.0

    def test_censoring_lifts_curve(self):
        durations = np.array([1.0, 2.0, 3.0, 4.0])
        all_events = kaplan_meier(durations, np.ones(4, dtype=bool))
        half_censored = kaplan_meier(
            durations, np.array([True, False, True, False])
        )
        assert half_censored.at(3.0) > all_events.at(3.0)
        assert half_censored.n_censored == 2

    def test_mostly_censored_population(self):
        """Card fleet reality: almost nobody fails in-window."""
        g = rng("km")
        n = 1000
        durations = np.full(n, 640.0)  # censored at end of study
        observed = np.zeros(n, dtype=bool)
        fail = g.choice(n, size=30, replace=False)
        durations[fail] = g.uniform(0, 640, size=30)
        observed[fail] = True
        curve = kaplan_meier(durations, observed)
        assert curve.median_survival() is None  # never drops to 0.5
        assert curve.at(640.0) > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            kaplan_meier(np.array([]), np.array([], dtype=bool))
        with pytest.raises(ValueError):
            kaplan_meier(np.array([1.0]), np.array([True, False]))
        with pytest.raises(ValueError):
            kaplan_meier(np.array([-1.0]), np.array([True]))


class TestProjection:
    def test_scaling(self):
        # Titan's 160 h at 18,688 GPUs -> 100k GPUs of the same card
        projected = project_fleet_mtbf(160.0, 18_688, 100_000)
        assert projected == pytest.approx(160.0 * 18_688 / 100_000)
        assert projected < 30.0  # the exascale reliability problem

    def test_improvement_credit(self):
        assert project_fleet_mtbf(
            160.0, 18_688, 100_000, per_device_improvement=10.0
        ) == pytest.approx(160.0 * 18_688 / 100_000 * 10)

    def test_identity(self):
        assert project_fleet_mtbf(160.0, 100, 100) == 160.0

    def test_validation(self):
        with pytest.raises(ValueError):
            project_fleet_mtbf(0.0, 1, 1)
        with pytest.raises(ValueError):
            project_fleet_mtbf(1.0, 0, 1)
        with pytest.raises(ValueError):
            project_fleet_mtbf(1.0, 1, 1, per_device_improvement=0.0)
