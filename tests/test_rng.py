"""Tests for deterministic RNG management (repro.rng)."""

import numpy as np

from repro.rng import DEFAULT_SEED, RngTree


def test_same_seed_same_streams():
    a = RngTree(7).fresh_generator("x")
    b = RngTree(7).fresh_generator("x")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_different_streams():
    tree = RngTree(7)
    a = tree.fresh_generator("alpha").random(10)
    b = tree.fresh_generator("beta").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_different_streams():
    a = RngTree(1).fresh_generator("x").random(10)
    b = RngTree(2).fresh_generator("x").random(10)
    assert not np.array_equal(a, b)


def test_generator_cached_and_advances():
    tree = RngTree(3)
    g1 = tree.generator("g")
    first = g1.random()
    g2 = tree.generator("g")
    assert g1 is g2
    assert g2.random() != first  # stream advanced, not restarted


def test_fresh_generator_restarts():
    tree = RngTree(3)
    a = tree.fresh_generator("g").random()
    b = tree.fresh_generator("g").random()
    assert a == b


def test_shards_are_independent_and_reproducible():
    tree = RngTree(11)
    shards = [g.random(5) for g in tree.spawn_shards("work", 4)]
    again = [g.random(5) for g in RngTree(11).spawn_shards("work", 4)]
    for s, a in zip(shards, again):
        assert np.array_equal(s, a)
    # distinct shards differ
    assert not np.array_equal(shards[0], shards[1])


def test_child_tree_deterministic():
    c1 = RngTree(5).child("shard.0")
    c2 = RngTree(5).child("shard.0")
    assert c1.seed == c2.seed
    assert RngTree(5).child("shard.1").seed != c1.seed


def test_child_tree_streams_differ_from_parent():
    tree = RngTree(5)
    child = tree.child("ns")
    a = tree.fresh_generator("x").random(4)
    b = child.fresh_generator("x").random(4)
    assert not np.array_equal(a, b)


def test_name_collision_unlikely():
    tree = RngTree(DEFAULT_SEED)
    seqs = {tuple(tree.sequence(f"component.{i}").spawn_key) for i in range(100)}
    assert len(seqs) == 100


def test_seed_property():
    assert RngTree(42).seed == 42
