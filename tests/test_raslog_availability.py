"""Tests for the RAS node-state stream and availability analysis."""

import numpy as np
import pytest

from repro.core.availability import availability_report
from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.rng import RngTree
from repro.telemetry.raslog import (
    NodeStateLog,
    RepairModel,
    parse_ras_lines,
    render_ras_lines,
)
from repro.topology.machine import TitanMachine
from repro.units import HOUR


@pytest.fixture(scope="module")
def machine():
    return TitanMachine()


def make_events(items):
    b = EventLogBuilder()
    for t, gpu, etype in items:
        b.add(t, gpu, etype)
    return b.freeze().sorted_by_time()


class TestRepairModel:
    def repair(self, events, name="r"):
        return RepairModel(RngTree(7).fresh_generator(name)).apply(events)

    def test_one_interval_per_hardware_event(self):
        events = make_events([
            (100.0, 1, ErrorType.DBE),
            (200.0, 2, ErrorType.OFF_THE_BUS),
            (300.0, 3, ErrorType.GRAPHICS_ENGINE_EXCEPTION),  # no downtime
        ])
        log = self.repair(events)
        assert len(log) == 2
        assert set(log.gpu.tolist()) == {1, 2}
        assert np.all(log.up_at > log.down_at)

    def test_otb_repairs_longer_than_dbe(self):
        events = make_events(
            [(float(i * 1000), i, ErrorType.DBE) for i in range(40)]
            + [(float(i * 1000 + 500), 100 + i, ErrorType.OFF_THE_BUS)
               for i in range(40)]
        )
        log = self.repair(events, "long")
        dbe = log.downtime_s[log.cause == ErrorType.DBE.code]
        otb = log.downtime_s[log.cause == ErrorType.OFF_THE_BUS.code]
        assert np.median(otb) > 4 * np.median(dbe)

    def test_empty_events(self):
        log = self.repair(make_events([]))
        assert len(log) == 0

    def test_sorted_by_down_time(self):
        events = make_events([
            (500.0, 1, ErrorType.DBE),
            (100.0, 2, ErrorType.OFF_THE_BUS),
        ])
        log = self.repair(events)
        assert np.all(np.diff(log.down_at) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeStateLog(
                gpu=np.array([1]),
                down_at=np.array([10.0]),
                up_at=np.array([5.0]),
                cause=np.array([ErrorType.DBE.code], dtype=np.int16),
            )


class TestRasText:
    def test_roundtrip(self, machine):
        log = NodeStateLog(
            gpu=np.array([5, 9], dtype=np.int64),
            down_at=np.array([100.0, 200.0]),
            up_at=np.array([1300.0, 9200.0]),
            cause=np.array(
                [ErrorType.DBE.code, ErrorType.OFF_THE_BUS.code], dtype=np.int16
            ),
        )
        lines = render_ras_lines(log, machine)
        assert len(lines) == 4
        assert "node down (gpu failure: dbe)" in lines[0]
        back = parse_ras_lines(lines, machine)
        assert len(back) == 2
        assert np.array_equal(np.sort(back.gpu), np.array([5, 9]))
        assert np.allclose(np.sort(back.downtime_s), [1200.0, 9000.0], atol=1e-5)

    def test_unclosed_outage_dropped(self, machine):
        log = NodeStateLog(
            gpu=np.array([5], dtype=np.int64),
            down_at=np.array([100.0]),
            up_at=np.array([900.0]),
            cause=np.array([ErrorType.DBE.code], dtype=np.int16),
        )
        lines = render_ras_lines(log, machine)
        back = parse_ras_lines(lines[:1], machine)  # down only
        assert len(back) == 0

    def test_noise_ignored(self, machine):
        back = parse_ras_lines(["random chatter", ""], machine)
        assert len(back) == 0


class TestAvailability:
    def make_log(self):
        return NodeStateLog(
            gpu=np.array([0, 1, 0], dtype=np.int64),
            down_at=np.array([0.0, HOUR, 10 * HOUR]),
            up_at=np.array([HOUR, 3 * HOUR, 11 * HOUR]),
            cause=np.array(
                [ErrorType.DBE.code, ErrorType.OFF_THE_BUS.code,
                 ErrorType.DBE.code],
                dtype=np.int16,
            ),
        )

    def test_accounting(self):
        report = availability_report(
            self.make_log(), window_s=100 * HOUR, n_nodes=10
        )
        assert report.n_outages == 3
        assert report.total_downtime_node_hours == pytest.approx(4.0)
        assert report.availability == pytest.approx(1 - 4 / 1000)
        assert report.mttr_hours() == pytest.approx(4 / 3)
        assert report.mttr_hours_by_cause[ErrorType.DBE] == pytest.approx(1.0)
        assert report.mttr_hours_by_cause[ErrorType.OFF_THE_BUS] == pytest.approx(2.0)
        assert report.worst_node == (0, 2.0)

    def test_clipping_at_window_end(self):
        report = availability_report(
            self.make_log(), window_s=10.5 * HOUR, n_nodes=10
        )
        # third outage contributes only 0.5 h
        assert report.total_downtime_node_hours == pytest.approx(3.5)

    def test_empty_log_fully_available(self):
        empty = NodeStateLog(
            gpu=np.empty(0, dtype=np.int64),
            down_at=np.empty(0),
            up_at=np.empty(0),
            cause=np.empty(0, dtype=np.int16),
        )
        report = availability_report(empty, window_s=HOUR, n_nodes=5)
        assert report.availability == 1.0
        assert report.worst_node is None

    def test_validation(self):
        with pytest.raises(ValueError):
            availability_report(self.make_log(), window_s=0.0, n_nodes=1)

    def test_on_simulated_dataset(self, smoke_dataset):
        ds = smoke_dataset
        report = availability_report(
            ds.node_state_log,
            window_s=ds.scenario.end,
            n_nodes=ds.machine.n_gpus,
        )
        # GPU failures are rare: the fleet stays >99.99 % available
        assert report.availability > 0.9999
        assert report.n_outages == len(ds.node_state_log)
        if ErrorType.OFF_THE_BUS in report.mttr_hours_by_cause and (
            ErrorType.DBE in report.mttr_hours_by_cause
        ):
            assert (
                report.mttr_hours_by_cause[ErrorType.OFF_THE_BUS]
                > report.mttr_hours_by_cause[ErrorType.DBE]
            )
