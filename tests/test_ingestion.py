"""Tests for hardened telemetry ingestion.

Strict/lenient/budgeted parser regimes, resync-on-garbage recovery,
quarantine, the nvsmi fleet-stream parser, the jobsnap record-stream
round trip, and hypothesis fuzz over the console parser: it must never
raise on arbitrary input, and the ParseStats primary counters must
always partition the input lines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.telemetry.parallel_parse as parallel_parse
from repro.chaos.injector import ChaosConfig, CorruptionInjector
from repro.telemetry.ingestion import (
    IngestionDegraded,
    IngestionError,
    QuarantineSink,
)
from repro.telemetry.jobsnap import (
    JOBSNAP_HEADER,
    parse_jobsnap_records,
    render_jobsnap_records,
)
from repro.telemetry.nvsmi_text import (
    parse_nvsmi_fleet,
    parse_nvsmi_query,
    render_nvsmi_query,
)
from repro.telemetry.parallel_parse import parse_lines_parallel
from repro.telemetry.parser import ConsoleLogParser


@pytest.fixture(scope="module")
def gpu_lines(smoke_dataset):
    """Real rendered GPU-event lines from the smoke scenario."""
    lines = [
        line
        for line in smoke_dataset.console_text.splitlines()[:5000]
        if "GPU XID" in line
    ]
    assert len(lines) >= 20
    return lines


@pytest.fixture(scope="module")
def parser(smoke_dataset):
    return ConsoleLogParser(smoke_dataset.machine)


class TestParserRegimes:
    def test_clean_round_trip_accounts_all_lines(self, parser, smoke_dataset):
        text = "\n".join(smoke_dataset.console_text.splitlines()[:2000])
        log, stats = parser.parse_text(text)
        assert stats.accounted == stats.total_lines
        assert stats.malformed_lines == 0
        assert stats.unknown_xid_lines == 0
        assert stats.corrupt_fraction == 0.0
        assert len(log) == stats.parsed_events

    def test_lenient_counts_garbage(self, parser, gpu_lines):
        lines = [gpu_lines[0], "### total garbage ###", gpu_lines[1]]
        log, stats = parser.parse_lines(lines)
        assert stats.total_lines == 3
        assert stats.parsed_events == 2
        assert stats.malformed_lines == 1
        assert stats.accounted == stats.total_lines

    def test_strict_raises_with_context(self, smoke_dataset):
        strict = ConsoleLogParser(smoke_dataset.machine, strict=True)
        with pytest.raises(IngestionError) as excinfo:
            strict.parse_lines(["### total garbage ###"])
        assert excinfo.value.category == "malformed"
        assert excinfo.value.line_no == 1
        assert "garbage" in excinfo.value.line

    def test_resync_recovers_spliced_line(self, parser, gpu_lines):
        spliced = "GARBAGE####" + gpu_lines[0]
        log, stats = parser.parse_lines([spliced])
        assert stats.parsed_events == 1
        assert stats.resynced_lines == 1
        assert stats.malformed_lines == 0
        assert len(log) == 1

    def test_resync_recovers_torn_plus_full(self, parser, gpu_lines):
        spliced = gpu_lines[0][:30] + gpu_lines[1]
        log, stats = parser.parse_lines([spliced])
        assert stats.parsed_events == 1
        assert stats.resynced_lines == 1

    def test_resync_disabled_rejects(self, smoke_dataset, gpu_lines):
        no_resync = ConsoleLogParser(smoke_dataset.machine, resync=False)
        _, stats = no_resync.parse_lines(["GARBAGE####" + gpu_lines[0]])
        assert stats.parsed_events == 0
        assert stats.malformed_lines == 1

    def test_error_budget_degrades_with_partial_log(
        self, smoke_dataset, gpu_lines
    ):
        budgeted = ConsoleLogParser(smoke_dataset.machine, error_budget=0.2)
        lines = gpu_lines[:5] + ["@@corrupt@@"] * 5
        with pytest.raises(IngestionDegraded) as excinfo:
            budgeted.parse_lines(lines)
        exc = excinfo.value
        assert exc.fraction == pytest.approx(0.5)
        assert exc.budget == pytest.approx(0.2)
        assert len(exc.log) == 5  # the partial log is still usable
        assert exc.stats.accounted == exc.stats.total_lines == 10

    def test_error_budget_not_exceeded_returns(self, smoke_dataset, gpu_lines):
        budgeted = ConsoleLogParser(smoke_dataset.machine, error_budget=0.6)
        log, stats = budgeted.parse_lines(gpu_lines[:5] + ["@@corrupt@@"] * 2)
        assert len(log) == 5
        assert stats.corrupt_fraction < 0.6

    def test_invalid_budget_rejected(self, smoke_dataset):
        with pytest.raises(ValueError):
            ConsoleLogParser(smoke_dataset.machine, error_budget=1.5)

    def test_quarantine_sink(self, smoke_dataset, gpu_lines):
        sink = QuarantineSink(capacity=3)
        quarantining = ConsoleLogParser(
            smoke_dataset.machine, quarantine=sink
        )
        _, stats = quarantining.parse_lines(
            [gpu_lines[0]] + [f"@@bad {i}@@" for i in range(5)]
        )
        assert sink.total == 5
        assert len(sink.records) == 3  # capacity-bounded raw retention
        assert sink.n_overflowed == 2
        assert sink.summary() == {"malformed": 5}
        assert sink.records[0].category == "malformed"
        assert stats.quarantined_lines == 5

    def test_overflowing_int_fields_rejected(self, parser, gpu_lines):
        big = "9" * 25
        line = gpu_lines[0] + f" [job={big}]"
        _, stats = parser.parse_lines([line])
        # Either resync re-reads a clean prefix or the line is rejected;
        # it must never crash the columnar store.
        assert stats.accounted == stats.total_lines == 1


_LINE_TEXT = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\n\r"
    ),
    max_size=120,
)
_SEMI_VALID = st.builds(
    lambda body: "2013-06-03T12:00:00.000000 c1-2c0s3n1 " + body,
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs",), blacklist_characters="\n\r"
        ),
        max_size=80,
    ),
)


class TestParserFuzz:
    """Property: the lenient parser is total over arbitrary text."""

    @given(lines=st.lists(st.one_of(_LINE_TEXT, _SEMI_VALID), max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_never_raises_and_counters_partition(self, bare_machine, lines):
        parser = ConsoleLogParser(bare_machine)
        log, stats = parser.parse_lines(lines)
        assert stats.accounted == stats.total_lines
        assert len(log) == stats.parsed_events
        assert stats.total_lines <= len(lines)  # blanks are skipped

    @given(
        prefix=_LINE_TEXT,
        job=st.integers(min_value=0, max_value=10**30),
        page=st.integers(min_value=0, max_value=10**30),
    )
    @settings(max_examples=60, deadline=None)
    def test_huge_numerals_never_crash(self, bare_machine, prefix, job, page):
        parser = ConsoleLogParser(bare_machine)
        line = (
            "2013-06-03T12:00:00.000000 c1-2c0s3n1 GPU XID 48 double-bit "
            f"ECC error in device_memory page 0x{page:x} [job={job}] {prefix}"
        )
        log, stats = parser.parse_lines([line])
        assert stats.accounted == stats.total_lines == 1


class TestNvsmiFleetStream:
    @pytest.fixture(scope="class")
    def reports(self, smoke_dataset):
        records = [smoke_dataset.nvsmi.query(slot) for slot in range(4)]
        return [
            render_nvsmi_query(record, gpu_index=i)
            for i, record in enumerate(records)
        ]

    def test_fleet_round_trip(self, reports):
        parsed, stats = parse_nvsmi_fleet("".join(reports))
        assert stats.total_reports == 4
        assert stats.parsed_reports == 4
        assert stats.rejected_reports == 0
        assert stats.corrupt_fraction == 0.0

    def test_damaged_report_counted_not_fatal(self, reports):
        damaged = reports[1].replace("Serial Number", "Ser### Num###")
        parsed, stats = parse_nvsmi_fleet(
            reports[0] + damaged + reports[2]
        )
        assert stats.total_reports == 3
        assert stats.parsed_reports == 2
        assert stats.rejected_reports == 1

    def test_lenient_garbled_temperature(self, reports):
        garbled = reports[0].replace(
            reports[0].split("GPU Current Temp")[1].split("\n")[0],
            "                : 7..5 C",
        )
        assert parse_nvsmi_query(garbled, strict=False) is None
        with pytest.raises(ValueError):
            parse_nvsmi_query(garbled, strict=True)

    def test_leading_torn_text_ignored(self, reports):
        parsed, stats = parse_nvsmi_fleet("torn tail of a report\n" + reports[0])
        assert stats.total_reports == 1
        assert stats.parsed_reports == 1


class TestJobsnapStream:
    @pytest.fixture(scope="class")
    def records(self, smoke_dataset):
        records = smoke_dataset.jobsnap_records[:40]
        assert records
        return records

    def test_round_trip(self, records):
        text = render_jobsnap_records(records)
        assert text.startswith(JOBSNAP_HEADER)
        parsed, stats = parse_jobsnap_records(text)
        assert stats.parsed_rows == len(records)
        assert stats.malformed_rows == 0
        assert [r.job for r in parsed] == [r.job for r in records]
        assert parsed[0].gpu_core_hours == pytest.approx(
            records[0].gpu_core_hours, abs=1e-6
        )
        assert [r.sbe_delta for r in parsed] == [
            r.sbe_delta for r in records
        ]

    def test_damage_counted_not_fatal(self, records):
        lines = render_jobsnap_records(records).splitlines()
        lines[2] = "xx\tyy"  # wrong arity + non-numeric
        lines[3] = lines[3].replace("\t", "\t" + "9" * 25, 1)  # torn digits
        lines.append("1\t2\t3\tinf\t0\t0\t0\t0")  # non-finite float
        parsed, stats = parse_jobsnap_records("\n".join(lines))
        assert stats.malformed_rows == 3
        assert stats.parsed_rows == len(records) - 2
        assert stats.corrupt_fraction == pytest.approx(
            3 / (len(records) + 1)
        )

    def test_strict_raises(self, records):
        text = render_jobsnap_records(records) + "garbage row\n"
        with pytest.raises(ValueError, match="malformed jobsnap row"):
            parse_jobsnap_records(text, strict=True)

    def test_duplicate_headers_skipped(self, records):
        text = render_jobsnap_records(records)
        spliced = text + JOBSNAP_HEADER + "\n" + text
        parsed, stats = parse_jobsnap_records(spliced)
        assert stats.parsed_rows == 2 * len(records)
        assert stats.malformed_rows == 0


def _assert_logs_equal(got, want):
    """Row-for-row equality over every EventLog column."""
    assert len(got) == len(want)
    for column in ("time", "gpu", "etype", "structure", "job", "parent", "aux"):
        assert np.array_equal(getattr(got, column), getattr(want, column)), column


def _assert_same_parse(machine, lines):
    """The slicing fast path and the regex slow path must be observably
    identical: same log rows, same statistics."""
    fast_log, fast_stats = ConsoleLogParser(machine, fast=True).parse_lines(lines)
    slow_log, slow_stats = ConsoleLogParser(machine, fast=False).parse_lines(lines)
    _assert_logs_equal(fast_log, slow_log)
    assert fast_stats == slow_stats
    assert fast_stats.accounted == fast_stats.total_lines


class TestFastSlowEquivalence:
    """The sliced fast path defers every doubtful line to the regex
    slow path, so fast and slow parsing are the same function."""

    def test_clean_console_text(self, smoke_dataset):
        _assert_same_parse(
            smoke_dataset.machine,
            smoke_dataset.console_text.splitlines()[:4000],
        )

    @pytest.mark.parametrize("level", [0.02, 0.25])
    def test_corrupted_console_text(self, smoke_dataset, level):
        base = smoke_dataset.console_text.splitlines()[:2500]
        injector = CorruptionInjector(ChaosConfig.uniform(level), seed=13)
        corrupted, counts, _ = injector.corrupt_lines(base)
        assert sum(counts.values()) > 0
        _assert_same_parse(smoke_dataset.machine, corrupted)

    @given(lines=st.lists(st.one_of(_LINE_TEXT, _SEMI_VALID), max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_fuzzed_lines(self, bare_machine, lines):
        _assert_same_parse(bare_machine, lines)

    def test_near_canonical_edge_lines(self, smoke_dataset, gpu_lines):
        # Lines one mutation away from canonical: each must land in the
        # same counter on both paths (most fall through to slow).
        base = gpu_lines[0]
        variants = [
            base + " ",  # trailing space (rstripped)
            base + " trailing garbage",
            base.replace(" [job=", " [job=00", 1),  # zero-padded job
            base[:26] + "  " + base[27:],  # double separator
            base.replace("T", " ", 1),  # broken stamp separator
            "c0-0c0s0n0 missing stamp",
            base[:10],  # truncated mid-stamp
        ]
        _assert_same_parse(smoke_dataset.machine, variants)


class TestParallelParse:
    """Chunked-parallel parsing must be observably identical to the
    serial parser: same rows, stats, errors and quarantine contents."""

    @pytest.fixture(autouse=True)
    def _tiny_chunks(self, monkeypatch):
        # Force real multi-chunk sharding on test-sized inputs.
        monkeypatch.setattr(parallel_parse, "_MIN_CHUNK_LINES", 10)

    def test_parallel_matches_serial(self, smoke_dataset, gpu_lines):
        lines = gpu_lines[:50] + ["@@garbage@@"] + gpu_lines[50:60]
        serial_log, serial_stats = ConsoleLogParser(
            smoke_dataset.machine
        ).parse_lines(lines)
        par_log, par_stats = parse_lines_parallel(
            lines, smoke_dataset.machine, n_workers=2, serial_threshold=0
        )
        _assert_logs_equal(par_log, serial_log)
        assert par_stats == serial_stats

    def test_torn_line_at_chunk_boundary(self, smoke_dataset, gpu_lines):
        # 40 lines, 2 workers -> the chunk boundary falls after index
        # 19.  Tear the last line of the first chunk (a splice of two
        # records, the classic torn-write shape): chunking must not
        # change how the parser heals it, and the merged ParseStats
        # must still partition the input.
        base = gpu_lines[:40]
        lines = list(base)
        lines[19] = base[19][:25] + base[20]
        serial_log, serial_stats = ConsoleLogParser(
            smoke_dataset.machine
        ).parse_lines(lines)
        par_log, par_stats = parse_lines_parallel(
            lines, smoke_dataset.machine, n_workers=2, serial_threshold=0
        )
        assert par_stats.resynced_lines == serial_stats.resynced_lines >= 1
        assert par_stats.accounted == par_stats.total_lines == 40
        _assert_logs_equal(par_log, serial_log)
        assert par_stats == serial_stats

    def test_quarantine_merge_parity(self, smoke_dataset, gpu_lines):
        lines = []
        for i, line in enumerate(gpu_lines[:40]):
            lines.append(line)
            if i % 7 == 0:
                lines.append(f"@@bad {i}@@")
        serial_sink = QuarantineSink(capacity=3)
        ConsoleLogParser(
            smoke_dataset.machine, quarantine=serial_sink
        ).parse_lines(lines)
        par_sink = QuarantineSink(capacity=3)
        parse_lines_parallel(
            lines,
            smoke_dataset.machine,
            n_workers=2,
            serial_threshold=0,
            quarantine=par_sink,
        )
        assert par_sink.total == serial_sink.total
        assert par_sink.counts == serial_sink.counts
        assert par_sink.n_overflowed == serial_sink.n_overflowed
        assert [r.line for r in par_sink.records] == [
            r.line for r in serial_sink.records
        ]

    def test_strict_raises_earliest_global_error(self, smoke_dataset, gpu_lines):
        # Garbage in both chunks; the parallel strict error must carry
        # the global line number of the *first* one, as a serial run
        # would have raised.
        lines = list(gpu_lines[:40])
        lines[25] = "@@late garbage@@"
        lines[4] = "@@early garbage@@"
        with pytest.raises(IngestionError) as serial_exc:
            ConsoleLogParser(smoke_dataset.machine, strict=True).parse_lines(lines)
        with pytest.raises(IngestionError) as par_exc:
            parse_lines_parallel(
                lines,
                smoke_dataset.machine,
                n_workers=2,
                serial_threshold=0,
                strict=True,
            )
        assert par_exc.value.line_no == serial_exc.value.line_no == 5
        assert par_exc.value.category == serial_exc.value.category

    def test_budget_evaluated_on_merged_stats(self, smoke_dataset, gpu_lines):
        lines = gpu_lines[:20] + ["@@corrupt@@"] * 20
        with pytest.raises(IngestionDegraded) as serial_exc:
            ConsoleLogParser(
                smoke_dataset.machine, error_budget=0.2
            ).parse_lines(lines)
        with pytest.raises(IngestionDegraded) as par_exc:
            parse_lines_parallel(
                lines,
                smoke_dataset.machine,
                n_workers=2,
                serial_threshold=0,
                error_budget=0.2,
            )
        assert par_exc.value.stats == serial_exc.value.stats
        assert par_exc.value.fraction == serial_exc.value.fraction
        _assert_logs_equal(par_exc.value.log, serial_exc.value.log)
