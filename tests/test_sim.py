"""Tests for scenarios and the end-to-end simulation (smoke scale)."""

import numpy as np
import pytest

from repro.errors.xid import ErrorType
from repro.sim import Scenario, TitanSimulation, default_dataset


class TestScenario:
    def test_paper_defaults(self):
        sc = Scenario.paper()
        sc.validate()
        assert sc.folded_torus
        assert sc.end > sc.start

    def test_named_ablations(self):
        assert not Scenario.no_thermal_gradient().rates.thermal_enabled
        assert Scenario.no_solder_fix().rates.otb_fix_time is None
        assert not Scenario.unfolded_torus().folded_torus

    def test_evolve(self):
        sc = Scenario.paper().evolve(seed=7)
        assert sc.seed == 7
        assert Scenario.paper().seed != 7 or True

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario.paper().evolve(end=-1.0).validate()
        with pytest.raises(ValueError):
            Scenario.paper().evolve(jobsnap_deployed_at=-5.0).validate()

    def test_smoke_is_consistent(self):
        sc = Scenario.smoke()
        sc.validate()
        assert sc.workload.end_time == sc.end


class TestSimulationSmoke:
    def test_dataset_shapes(self, smoke_dataset):
        ds = smoke_dataset
        assert ds.machine.n_gpus == 18_688
        assert ds.sbe_by_slot.shape == (18_688,)
        assert ds.sbe_by_job.shape == (len(ds.trace),)
        assert len(ds.trace) > 500

    def test_events_sorted_within_window(self, smoke_dataset):
        ev = smoke_dataset.events
        assert ev.is_sorted()
        assert ev.time.min() >= 0.0

    def test_console_roundtrip_counts(self, smoke_dataset):
        ds = smoke_dataset
        stats = ds.parse_stats
        assert stats.malformed_lines == 0
        assert stats.unknown_xid_lines == 0
        # every loggable event survives the text round trip
        loggable = len(ds.events) - len(ds.events.of_type(ErrorType.SBE))
        assert stats.parsed_events == loggable
        assert len(ds.parsed_events) == loggable

    def test_parsed_log_has_no_parents(self, smoke_dataset):
        assert np.all(smoke_dataset.parsed_events.parent == -1)

    def test_parsed_matches_ground_truth_types(self, smoke_dataset):
        ds = smoke_dataset
        truth = {
            t: n for t, n in ds.events.count_by_type().items()
            if t is not ErrorType.SBE
        }
        parsed = ds.parsed_events.count_by_type()
        assert parsed == truth

    def test_nvsmi_table_consistency(self, smoke_dataset):
        table = smoke_dataset.nvsmi_table
        # InfoROM totals equal injected totals (SBE writes never race)
        assert table["sbe_total"].sum() == smoke_dataset.sbe_by_slot.sum()

    def test_jobsnap_covers_second_half(self, smoke_dataset):
        ds = smoke_dataset
        records = ds.jobsnap_records
        assert len(records) > 0
        deployed = ds.scenario.jobsnap_deployed_at
        assert all(
            ds.trace.start[r.job] >= deployed for r in records
        )

    def test_reproducible(self, smoke_dataset):
        again = TitanSimulation(Scenario.smoke()).run()
        assert len(again.events) == len(smoke_dataset.events)
        assert np.array_equal(again.events.time, smoke_dataset.events.time)
        assert np.array_equal(again.sbe_by_slot, smoke_dataset.sbe_by_slot)

    def test_different_seed_differs(self, smoke_dataset):
        other = TitanSimulation(Scenario.smoke(seed=12345)).run()
        assert not np.array_equal(
            other.events.time, smoke_dataset.events.time
        )

    def test_default_dataset_memoizes(self, smoke_dataset):
        assert default_dataset(Scenario.smoke()) is smoke_dataset

    def test_unfolded_machine_allocation(self):
        ds = TitanSimulation(
            Scenario.unfolded_torus().evolve(
                end=Scenario.smoke().end,
                workload=Scenario.smoke().workload,
                jobsnap_deployed_at=Scenario.smoke().jobsnap_deployed_at,
            )
        ).run()
        # unfolded: allocation order walks physical rows 0,1,2,...
        rows = ds.machine.row[ds.machine.allocation_order]
        _, first_idx = np.unique(rows, return_index=True)
        visit = rows[np.sort(first_idx)]
        assert visit[0] == 0 and visit[1] == 1 and visit[2] == 2


class TestNextGenerationScenario:
    def test_rates_improved(self):
        from repro.sim import Scenario

        sc = Scenario.next_generation()
        sc.validate()
        base = Scenario.paper()
        assert sc.rates.dbe_mtbf_hours > 2 * base.rates.dbe_mtbf_hours
        assert sc.rates.otb_rate_before_fix_per_hour == 0.0
        assert (
            sc.rates.sbe_rate_per_proneness_hour
            < base.rates.sbe_rate_per_proneness_hour
        )
