"""Survival analysis of the simulated fleet (reliability extension).

Card time-to-first-DBE with right-censoring at end of study: the
Kaplan-Meier machinery applied to the dataset the way a reliability
engineer would.
"""

import numpy as np
import pytest

from repro.core.reliability import kaplan_meier
from repro.errors.xid import ErrorType
from repro.units import HOUR


@pytest.fixture(scope="module")
def km_curve(paper_dataset):
    ds = paper_dataset
    log = ds.parsed_events.of_type(ErrorType.DBE)
    end_h = ds.scenario.end / HOUR
    # time of first DBE per slot
    first = np.full(ds.machine.n_gpus, np.inf)
    for i in range(len(log)):
        gpu = int(log.gpu[i])
        first[gpu] = min(first[gpu], float(log.time[i]) / HOUR)
    observed = np.isfinite(first)
    durations = np.where(observed, first, end_h)
    return kaplan_meier(durations, observed), int(observed.sum())


def test_most_cards_survive(km_curve, paper_dataset):
    curve, n_failed = km_curve
    end_h = paper_dataset.scenario.end / HOUR
    assert curve.n_events == n_failed
    assert curve.n_censored == paper_dataset.machine.n_gpus - n_failed
    # ~90 first-DBEs out of 18,688 cards: survival stays near 1
    assert curve.at(end_h) > 0.99
    assert curve.median_survival() is None


def test_survival_monotone_nonincreasing(km_curve):
    curve, _ = km_curve
    assert np.all(np.diff(curve.survival) <= 1e-12)
    assert curve.at(0.0) == 1.0


def test_hazard_roughly_constant(km_curve, paper_dataset):
    """DBE first-failures arrive steadily: the survival drop in the
    first half of the study is comparable to the second half."""
    curve, _ = km_curve
    end_h = paper_dataset.scenario.end / HOUR
    s_half = curve.at(end_h / 2)
    s_full = curve.at(end_h)
    drop_first = 1.0 - s_half
    drop_second = s_half - s_full
    # with ~90 events the halves fluctuate; rule out strong burn-in or
    # wear-out (order-of-magnitude imbalance), not sampling noise
    ratio = drop_first / drop_second
    assert 1 / 2.5 < ratio < 2.5


def test_survival_matches_exponential_prediction(km_curve, paper_dataset):
    """With fleet MTBF M over N cards, per-card first-failure hazard is
    ~1/(M·N): S(end) ≈ exp(−end/(M·N))."""
    curve, n_failed = km_curve
    end_h = paper_dataset.scenario.end / HOUR
    n = paper_dataset.machine.n_gpus
    fleet_mtbf_h = end_h / max(n_failed, 1)
    predicted = np.exp(-end_h / (fleet_mtbf_h * n))
    assert curve.at(end_h) == pytest.approx(predicted, abs=0.002)
