"""Stateful (rule-based) property test for the artifact store.

A hypothesis ``RuleBasedStateMachine`` drives one
:class:`~repro.cache.store.ArtifactStore` through random interleavings
of ``put_bytes``/``get_bytes``/``delete``/``evict``/``clear``,
deliberate on-disk corruption, torn staging files from "dead writers",
and store reopens — while a shadow model (a plain dict) predicts what
every operation must observe:

* round-trips — every key the model holds round-trips its exact
  payload bytes and kind;
* corruption safety — a truncated container degrades to a miss (the
  entry is dropped and ``corrupt_dropped`` counts it), never a wrong
  payload;
* counter invariants — ``hits``/``misses``/``writes``/
  ``corrupt_dropped``/``evicted`` match the model's ledger exactly
  after every step;
* staging hygiene — reopening the store reclaims temp files left by
  dead writers and leaves live writers' files alone, and no ``.tmp-``
  debris is ever visible through ``entries()``/``keys()``.
"""

import os
import shutil
import subprocess
import sys
import tempfile

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.cache.store import _SUFFIX, _TMP_MARKER, ArtifactStore

#: A pid guaranteed dead for the whole session: a child that already
#: exited (and was reaped, so the pid is free and not a zombie).
_proc = subprocess.Popen([sys.executable, "-c", ""])
_proc.wait()
DEAD_PID = _proc.pid

_KEYS = ("alpha", "beta", "deep/nested/key", "deep/nested/other", "z-9._x")
_KINDS = ("text", "json", "npz", "pickle")


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.root = tempfile.mkdtemp(prefix="repro-store-sm-")
        self.store = ArtifactStore(self.root)
        #: Shadow model: key -> (payload, kind) for every *valid* artifact.
        self.model: dict[str, tuple[bytes, str]] = {}
        #: Expected session counters of the *current* store instance.
        self.expected = dict.fromkeys(
            ("hits", "misses", "writes", "corrupt_dropped", "evicted"), 0
        )
        #: Stale staging files injected with a dead writer pid.
        self.dead_tmp: list[str] = []

    def teardown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def _object_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key + _SUFFIX)

    # -- rules ---------------------------------------------------------------

    @rule(
        key=st.sampled_from(_KEYS),
        payload=st.binary(max_size=64),
        kind=st.sampled_from(_KINDS),
    )
    def put(self, key, payload, kind):
        self.store.put_bytes(key, payload, kind)
        self.model[key] = (payload, kind)
        self.expected["writes"] += 1

    @rule(key=st.sampled_from(_KEYS))
    def get(self, key):
        got = self.store.get_bytes(key)
        if key in self.model:
            assert got == self.model[key]
            self.expected["hits"] += 1
        else:
            assert got is None
            self.expected["misses"] += 1

    @rule(key=st.sampled_from(_KEYS))
    def delete(self, key):
        removed = self.store.delete(key)
        assert removed == (key in self.model)
        self.model.pop(key, None)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def corrupt_then_get(self, data):
        """Truncate one container on disk: the read must degrade to a
        miss, drop the entry, and count it — never return bytes."""
        key = data.draw(st.sampled_from(sorted(self.model)))
        path = self._object_path(key)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert self.store.get_bytes(key) is None
        assert not self.store.has(key)
        self.model.pop(key)
        self.expected["corrupt_dropped"] += 1
        self.expected["misses"] += 1

    @rule(budget=st.sampled_from((0, 64, 4096)))
    def evict(self, budget):
        before = set(self.model)
        removed = self.store.evict(budget)
        # eviction only ever removes whole known artifacts...
        assert set(removed) <= before
        self.expected["evicted"] += len(removed)
        for key in removed:
            self.model.pop(key)
        # ...and afterwards the survivors fit the byte budget.
        assert self.store.total_bytes() <= budget or not self.model
        for key in self.model:
            assert self.store.has(key)

    @rule()
    def clear(self):
        removed = self.store.clear()
        assert removed == len(self.model)
        self.model.clear()
        self.dead_tmp = [p for p in self.dead_tmp if os.path.exists(p)]

    @rule(key=st.sampled_from(_KEYS), n=st.integers(0, 99))
    def drop_torn_tmp_from_dead_writer(self, key, n):
        """Simulate a writer SIGKILLed between staging and rename."""
        path = self._object_path(key) + f"{_TMP_MARKER}{DEAD_PID}-{n}"
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(b"torn half-written garbage")
        self.dead_tmp.append(path)

    @rule()
    def reopen(self):
        """A new process opens the same root: fresh counters, stale
        staging files from dead writers reclaimed, live ones kept."""
        live = self._object_path("alpha") + f"{_TMP_MARKER}{os.getpid()}-0"
        with open(live, "wb") as fh:
            fh.write(b"still being written")
        self.store = ArtifactStore(self.root)
        self.expected = dict.fromkeys(self.expected, 0)
        for path in self.dead_tmp:
            assert not os.path.exists(path), "stale staging file survived"
        self.dead_tmp = []
        assert os.path.exists(live), "live writer's staging file removed"
        os.unlink(live)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def counters_match_the_ledger(self):
        assert self.store.stats.as_dict() == self.expected

    @invariant()
    def inventory_matches_the_model(self):
        entries = self.store.entries()
        assert sorted(e.key for e in entries) == sorted(self.model)
        for entry in entries:
            payload, kind = self.model[entry.key]
            assert entry.kind == kind
            assert _TMP_MARKER not in entry.key


StoreMachine.TestCase.settings = settings(
    max_examples=25,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestStoreStateful = StoreMachine.TestCase
