"""Tests for the calibrated RateConfig."""

import pytest

from repro.faults.rates import DRIVER_UPGRADE_TIME, OTB_FIX_TIME, RateConfig
from repro.gpu.k20x import MemoryStructure
from repro.units import datetime_to_timestamp
import datetime


def test_defaults_valid():
    RateConfig().validate()


def test_dbe_rate_matches_paper_mtbf():
    rates = RateConfig()
    assert rates.dbe_mtbf_hours == 160.0
    assert rates.dbe_rate_per_hour == pytest.approx(1 / 160)
    assert rates.dbe_rate_per_second == pytest.approx(1 / 160 / 3600)


def test_structure_split_sums_to_one():
    split = RateConfig().dbe_structure_split
    assert sum(split.values()) == pytest.approx(1.0)
    assert split[MemoryStructure.DEVICE_MEMORY] == pytest.approx(0.86)
    assert split[MemoryStructure.REGISTER_FILE] == pytest.approx(0.14)


def test_milestone_dates():
    assert OTB_FIX_TIME == datetime_to_timestamp(datetime.datetime(2013, 12, 1))
    assert DRIVER_UPGRADE_TIME == datetime_to_timestamp(datetime.datetime(2014, 1, 1))
    assert RateConfig().retirement_active_from == DRIVER_UPGRADE_TIME


def test_evolve_is_immutable_copy():
    base = RateConfig()
    ablated = base.evolve(thermal_enabled=False)
    assert base.thermal_enabled is True
    assert ablated.thermal_enabled is False
    assert ablated.dbe_mtbf_hours == base.dbe_mtbf_hours


def test_validate_rejects_bad_split():
    bad = RateConfig().evolve(
        dbe_structure_split={MemoryStructure.DEVICE_MEMORY: 0.5}
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_validate_rejects_bad_probabilities():
    with pytest.raises(ValueError):
        RateConfig().evolve(retirement_log_probability=1.5).validate()
    with pytest.raises(ValueError):
        RateConfig().evolve(p_43_after_13=-0.1).validate()
    with pytest.raises(ValueError):
        RateConfig().evolve(dbe_mtbf_hours=0.0).validate()
    with pytest.raises(ValueError):
        RateConfig().evolve(
            sbe_l2_share=0.99, sbe_device_memory_share=0.05
        ).validate()


def test_xid42_never_occurs():
    assert RateConfig().xid42_expected_total == 0.0
