"""Tests for from-scratch statistics, validated against SciPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.core.stats import (
    bootstrap_ci,
    fano_factor,
    gini,
    normalized_to_mean,
    pearson,
    permutation_pvalue,
    rankdata_average,
    spearman,
    top_k_share,
)
from repro.rng import RngTree


def rng():
    return RngTree(2).fresh_generator("stats")


class TestPearson:
    def test_perfect_line(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        g = rng()
        x = g.normal(size=200)
        y = 0.5 * x + g.normal(size=200)
        assert pearson(x, y) == pytest.approx(sps.pearsonr(x, y).statistic)

    def test_constant_input_convention(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson([1.0], [2.0])
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0, 2.0, 3.0])


class TestSpearman:
    def test_matches_scipy_continuous(self):
        g = rng()
        x = g.normal(size=300)
        y = np.exp(x) + g.normal(scale=0.1, size=300)
        assert spearman(x, y) == pytest.approx(
            sps.spearmanr(x, y).statistic, abs=1e-12
        )

    def test_matches_scipy_with_heavy_ties(self):
        """Per-job SBE counts are mostly zero — ties must be handled
        exactly like scipy's average ranks."""
        g = rng()
        x = g.integers(0, 5, size=500).astype(float)
        y = g.integers(0, 3, size=500).astype(float)
        assert spearman(x, y) == pytest.approx(
            sps.spearmanr(x, y).statistic, abs=1e-12
        )

    def test_monotone_transform_invariance(self):
        g = rng()
        x = g.normal(size=100)
        y = g.normal(size=100)
        assert spearman(x, y) == pytest.approx(
            spearman(np.exp(x), y), abs=1e-12
        )

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=5,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_scipy(self, data):
        x = np.asarray([a for a, _ in data], dtype=float)
        y = np.asarray([b for _, b in data], dtype=float)
        ours = spearman(x, y)
        import warnings

        with warnings.catch_warnings():
            # constant inputs are expected among generated examples
            warnings.simplefilter("ignore")
            theirs = sps.spearmanr(x, y).statistic
        if np.isnan(theirs):
            assert ours == 0.0  # constant-input convention
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)


class TestRanks:
    def test_average_rank_ties(self):
        ranks = rankdata_average(np.array([10.0, 20.0, 20.0, 30.0]))
        assert ranks.tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy(self):
        g = rng()
        x = g.integers(0, 4, size=100).astype(float)
        assert np.allclose(rankdata_average(x), sps.rankdata(x))


class TestNormalize:
    def test_mean_one(self):
        out = normalized_to_mean(np.array([1.0, 2.0, 3.0]))
        assert out.mean() == pytest.approx(1.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            normalized_to_mean(np.zeros(3))


class TestFano:
    def test_poisson_near_one(self):
        counts = rng().poisson(10.0, size=5000)
        assert fano_factor(counts) == pytest.approx(1.0, abs=0.1)

    def test_bursty_large(self):
        counts = np.zeros(1000)
        counts[::100] = 100
        assert fano_factor(counts) > 50

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fano_factor([])

    def test_all_zero(self):
        assert fano_factor(np.zeros(10)) == 0.0


class TestGini:
    def test_equal_is_zero(self):
        assert gini(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        x = np.zeros(1000)
        x[0] = 1.0
        assert gini(x) > 0.99

    def test_bounds(self):
        g = rng()
        for _ in range(5):
            x = g.exponential(size=50)
            assert 0.0 <= gini(x) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini([])
        with pytest.raises(ValueError):
            gini([-1.0, 2.0])


class TestTopK:
    def test_shares(self):
        x = np.array([50.0, 30.0, 10.0, 10.0])
        assert top_k_share(x, 1) == pytest.approx(0.5)
        assert top_k_share(x, 2) == pytest.approx(0.8)
        assert top_k_share(x, 10) == pytest.approx(1.0)

    def test_zero_total(self):
        assert top_k_share(np.zeros(5), 2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k_share(np.ones(3), 0)


class TestBootstrap:
    def test_ci_contains_mean(self):
        g = rng()
        x = g.normal(loc=5.0, size=500)
        lo, hi = bootstrap_ci(x, np.mean, g, n_resamples=300)
        # the percentile CI brackets the *sample* statistic reliably
        assert lo < x.mean() < hi
        assert hi - lo < 0.5

    def test_validation(self):
        g = rng()
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), np.mean, g)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(5), np.mean, g, confidence=1.5)


class TestPermutation:
    def test_strong_correlation_significant(self):
        g = rng()
        x = g.normal(size=100)
        y = x + g.normal(scale=0.2, size=100)
        assert permutation_pvalue(x, y, g, n_permutations=200) < 0.05

    def test_independent_not_significant(self):
        g = rng()
        x = g.normal(size=100)
        y = g.normal(size=100)
        assert permutation_pvalue(x, y, g, n_permutations=200) > 0.05
