"""Stateful and fuzz property tests on the core data structures.

* the interval allocator under arbitrary allocate/release sequences
  (invariants: conservation, no overlap, merge correctness);
* console-log round-trip under randomly generated events;
* sequential dedup invariants under arbitrary event streams.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.gpu.k20x import MemoryStructure
from repro.telemetry.console import ConsoleLogWriter
from repro.telemetry.parser import ConsoleLogParser
from repro.topology.machine import TitanMachine
from repro.workload.scheduler import IntervalAllocator

_MACHINE = TitanMachine()

CAPACITY = 200


class AllocatorMachine(RuleBasedStateMachine):
    """Random allocate/release traffic against the interval free-list."""

    def __init__(self):
        super().__init__()
        self.allocator = IntervalAllocator(CAPACITY)
        self.live: list[list[tuple[int, int]]] = []

    @rule(n=st.integers(1, 40))
    def allocate(self, n):
        if n > self.allocator.free_count:
            return
        runs = self.allocator.allocate(n)
        assert sum(l for _, l in runs) == n
        self.live.append(runs)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        runs = self.live.pop(idx)
        self.allocator.release(runs)

    @invariant()
    def conservation(self):
        allocated = sum(
            l for runs in self.live for _, l in runs
        )
        assert allocated + self.allocator.free_count == CAPACITY

    @invariant()
    def no_overlap(self):
        seen: set[int] = set()
        for runs in self.live:
            for s, l in runs:
                block = set(range(s, s + l))
                assert not (block & seen)
                seen |= block

    @invariant()
    def bounds(self):
        for runs in self.live:
            for s, l in runs:
                assert 0 <= s and s + l <= CAPACITY


TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


_LOGGABLE = [t for t in ErrorType if t is not ErrorType.SBE]


@st.composite
def random_events(draw):
    n = draw(st.integers(1, 30))
    events = []
    for _ in range(n):
        events.append((
            draw(st.floats(0.0, 5e7, allow_nan=False)),
            draw(st.integers(0, _MACHINE.n_gpus - 1)),
            draw(st.sampled_from(_LOGGABLE)),
            draw(st.integers(-1, 10_000)),  # job
            draw(st.integers(-1, 90_000)),  # page/aux
        ))
    return events


class TestLogRoundTripFuzz:
    @given(events=random_events())
    @settings(max_examples=40, deadline=None)
    def test_text_roundtrip_preserves_everything(self, events):
        builder = EventLogBuilder()
        for t, gpu, etype, job, aux in events:
            structure = (
                MemoryStructure.DEVICE_MEMORY if aux >= 0 else None
            )
            builder.add(t, gpu, etype, structure=structure, job=job, aux=aux)
        log = builder.freeze()
        writer = ConsoleLogWriter(_MACHINE)
        text = writer.to_text(log)
        parsed, stats = ConsoleLogParser(_MACHINE).parse_text(text)
        assert stats.malformed_lines == 0
        assert stats.unknown_xid_lines == 0
        assert len(parsed) == len(log)
        # types, gpus, jobs survive exactly; times to microsecond
        assert np.array_equal(parsed.etype, log.etype)
        assert np.array_equal(parsed.gpu, log.gpu)
        assert np.array_equal(parsed.job, log.job)
        assert np.allclose(parsed.time, log.time, atol=1e-5)

    @given(events=random_events())
    @settings(max_examples=25, deadline=None)
    def test_parser_ignores_interleaved_noise(self, events):
        builder = EventLogBuilder()
        for t, gpu, etype, job, aux in events:
            builder.add(t, gpu, etype, job=job)
        text = ConsoleLogWriter(_MACHINE).to_text(builder.freeze())
        noisy = []
        for i, line in enumerate(text.splitlines()):
            noisy.append(line)
            # framed non-GPU chatter (classified, then ignored) ...
            noisy.append(
                "2014-01-01T00:00:00.000000 c0-1c0s1n0 Lustre: slow response"
            )
            # ... and frameless noise (counted as malformed)
            if i % 3 == 0:
                noisy.append("kernel: unrelated chatter on nid00042")
        parsed, stats = ConsoleLogParser(_MACHINE).parse_lines(noisy)
        assert len(parsed) == len(events)
        assert stats.non_gpu_lines == len(events)
        assert stats.malformed_lines >= 1
