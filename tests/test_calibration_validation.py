"""Tests for the calibration self-check."""

import pytest

from repro.faults.validation import CalibrationCheck, validate_calibration


def test_smoke_dataset_calibrated(smoke_dataset):
    checks = validate_calibration(smoke_dataset)
    assert checks, "expected at least the Poisson checks"
    failing = [c for c in checks if not c.ok]
    assert not failing, "\n".join(c.render() for c in failing)


def test_paper_dataset_calibrated(paper_dataset):
    checks = validate_calibration(paper_dataset)
    names = {c.name for c in checks}
    # full-window runs exercise every check class
    for expected_name in (
        "dbe_count",
        "dbe_device_memory_share",
        "otb_after_fix",
        "xid59_after_upgrade",
        "xid62_before_upgrade",
        "xid42_count",
        "xid43_count",
        "xid44_count",
        "sbe_cards_within_prone_population",
    ):
        assert expected_name in names
    failing = [c for c in checks if not c.ok]
    assert not failing, "\n".join(c.render() for c in failing)


def test_miscalibration_detected(smoke_dataset):
    """Lie about the configured MTBF: the validator must notice."""
    lying = smoke_dataset.scenario.evolve(
        rates=smoke_dataset.scenario.rates.evolve(dbe_mtbf_hours=1.0)
    )
    import dataclasses

    forged = dataclasses.replace(smoke_dataset, scenario=lying)
    checks = {c.name: c for c in validate_calibration(forged)}
    assert not checks["dbe_count"].ok


def test_render():
    check = CalibrationCheck("x", 10.0, 11.0, 5.0, True)
    assert "OK" in check.render() and "x" in check.render()
    bad = CalibrationCheck("y", 10.0, 50.0, 5.0, False)
    assert "FAIL" in bad.render()
