"""Tests for the parallel helpers, report renderers, and CSV writers."""

import numpy as np
import pytest

from repro.core.report import (
    render_bar,
    render_heatmap,
    render_monthly_series,
    render_table,
)
from repro.parallel.pool import map_reduce, parallel_map
from repro.parallel.replicas import (
    ReplicaSummary,
    replica_confidence_intervals,
    run_replicas,
    summarize_dataset,
)
from repro.sim import Scenario
from repro.viz.csvout import write_grid_csv, write_rows_csv, write_series_csv


def _square(x):  # module-level: picklable
    return x * x


def _add(a, b):
    return a + b


class TestPool:
    def test_serial_map(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_map_order_preserved(self):
        out = parallel_map(_square, list(range(20)), n_workers=2)
        assert out == [x * x for x in range(20)]

    def test_lambda_rejected_in_parallel(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1, 2, 3], n_workers=2)

    def test_lambda_fine_serially(self):
        assert parallel_map(lambda x: x + 1, [1], n_workers=1) == [2]

    def test_map_reduce(self):
        assert map_reduce(_square, [1, 2, 3], _add) == 14

    def test_map_reduce_empty(self):
        with pytest.raises(ValueError):
            map_reduce(_square, [], _add)

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [5], n_workers=8) == [25]


class TestReplicas:
    def test_summarize_smoke(self, smoke_dataset):
        stats = summarize_dataset(smoke_dataset)
        assert stats["dbe_total"] > 0
        assert 0 <= stats["sbe_fraction"] < 0.05
        assert "spearman_core_hours" in stats

    def test_run_replicas_serial(self):
        base = Scenario.smoke(days=20.0)
        summaries = run_replicas(base, [1, 2], n_workers=1)
        assert len(summaries) == 2
        assert summaries[0].seed == 1
        # different seeds -> different samples
        assert summaries[0]["dbe_total"] != summaries[1]["dbe_total"] or (
            summaries[0]["sbe_cards"] != summaries[1]["sbe_cards"]
        )

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_replicas(Scenario.smoke(), [])

    def test_confidence_intervals(self):
        summaries = [
            ReplicaSummary(seed=i, statistics={"x": float(i)}) for i in range(11)
        ]
        ci = replica_confidence_intervals(summaries, confidence=0.8)
        lo, med, hi = ci["x"]
        assert med == 5.0
        assert lo < med < hi

    def test_ci_validation(self):
        with pytest.raises(ValueError):
            replica_confidence_intervals([])
        with pytest.raises(ValueError):
            replica_confidence_intervals(
                [ReplicaSummary(0, {"x": 1.0})], confidence=2.0
            )

    def test_ci_only_common_keys(self):
        summaries = [
            ReplicaSummary(0, {"a": 1.0, "b": 2.0}),
            ReplicaSummary(1, {"a": 3.0}),
        ]
        ci = replica_confidence_intervals(summaries)
        assert set(ci) == {"a"}


class TestRenderers:
    def test_table(self):
        text = render_table(["name", "xid"], [["DBE", 48], ["OTB", "-"]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "48" in text and "OTB" in text
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_bar(self):
        assert render_bar(5.0, 10.0, width=10) == "#####"
        assert render_bar(20.0, 10.0, width=10) == "##########"  # clamped
        assert render_bar(1.0, 0.0) == ""

    def test_monthly_series(self):
        text = render_monthly_series(
            ["Jun'13", "Jul'13"], np.array([2, 4]), "DBEs"
        )
        assert text.startswith("DBEs")
        assert "Jun'13" in text
        with pytest.raises(ValueError):
            render_monthly_series(["x"], np.array([1, 2]), "t")

    def test_heatmap(self):
        text = render_heatmap(
            np.array([[0.0, 1.0], [0.5, 0.25]]),
            row_labels=["r0", "r1"],
            col_labels=["c0", "c1"],
            title="T",
        )
        assert text.startswith("T")
        assert "r0" in text and "c0" in text
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(3))

    def test_heatmap_all_zero(self):
        text = render_heatmap(np.zeros((2, 2)))
        assert text  # renders blanks, no crash


class TestCsv:
    def test_rows(self, tmp_path):
        path = write_rows_csv(tmp_path / "t.csv", ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[2] == "3,4"
        with pytest.raises(ValueError):
            write_rows_csv(tmp_path / "bad.csv", ["a"], [[1, 2]])

    def test_series(self, tmp_path):
        path = write_series_csv(
            tmp_path / "s.csv", ["x", "y"], np.array([1, 2])
        )
        assert "x,1" in path.read_text()
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "bad.csv", ["x"], np.array([1, 2]))

    def test_grid(self, tmp_path):
        path = write_grid_csv(tmp_path / "g.csv", np.arange(4).reshape(2, 2))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "row,col,value"
        assert len(lines) == 5
        with pytest.raises(ValueError):
            write_grid_csv(tmp_path / "bad.csv", np.zeros(3))
