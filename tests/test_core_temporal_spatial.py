"""Tests for temporal and spatial characterization."""

import numpy as np
import pytest

from repro.core.burst import burstiness_metrics, daily_counts
from repro.core.spatial import (
    cabinet_grid_from_events,
    cage_distribution,
    distinct_card_cage_distribution,
    grid_alternation_score,
    grid_skewness,
    per_slot_cage_distribution,
    row_profile,
    uniformity_chi2,
)
from repro.core.temporal import (
    events_before_after,
    interarrival_hours,
    monthly_counts,
    mtbf_hours,
)
from repro.errors.event import EventLog, EventLogBuilder
from repro.errors.xid import ErrorType
from repro.topology.machine import TitanMachine
from repro.units import DAY, HOUR, STUDY_END, month_bounds


@pytest.fixture(scope="module")
def machine():
    return TitanMachine()


def make_log(times, gpus=None, etype=ErrorType.DBE):
    b = EventLogBuilder()
    for i, t in enumerate(times):
        b.add(float(t), int(gpus[i]) if gpus is not None else 0, etype)
    return b.freeze().sorted_by_time()


class TestTemporal:
    def test_monthly_counts(self):
        t0 = month_bounds(0)[0] + 10
        t5 = month_bounds(5)[0] + 10
        log = make_log([t0, t0 + 1, t5])
        counts = monthly_counts(log)
        assert counts.shape == (21,)
        assert counts[0] == 2 and counts[5] == 1
        assert counts.sum() == 3

    def test_monthly_counts_type_filter(self):
        b = EventLogBuilder()
        b.add(10.0, 0, ErrorType.DBE)
        b.add(20.0, 0, ErrorType.OFF_THE_BUS)
        log = b.freeze()
        assert monthly_counts(log, ErrorType.DBE).sum() == 1

    def test_monthly_ignores_out_of_window(self):
        log = make_log([STUDY_END + 100.0])
        assert monthly_counts(log).sum() == 0

    def test_mtbf_with_span(self):
        log = make_log(np.linspace(0, 100 * HOUR, 11))
        assert mtbf_hours(log, span_s=110 * HOUR) == pytest.approx(10.0)

    def test_mtbf_from_extent(self):
        log = make_log([0.0, 10 * HOUR, 20 * HOUR])
        assert mtbf_hours(log) == pytest.approx(10.0)

    def test_mtbf_validation(self):
        with pytest.raises(ValueError):
            mtbf_hours(EventLog.empty())
        with pytest.raises(ValueError):
            mtbf_hours(make_log([1.0]))
        with pytest.raises(ValueError):
            mtbf_hours(make_log([1.0, 2.0]), span_s=0.0)

    def test_interarrival(self):
        log = make_log([0.0, HOUR, 3 * HOUR])
        assert interarrival_hours(log).tolist() == [1.0, 2.0]

    def test_before_after(self):
        log = make_log([1.0, 2.0, 3.0, 4.0])
        assert events_before_after(log, 2.5) == (2, 2)


class TestBurst:
    def test_daily_counts(self):
        log = make_log([0.0, 1.0, DAY + 1.0])
        counts = daily_counts(log, 0.0, 2 * DAY)
        assert counts.tolist() == [2, 1]

    def test_daily_counts_validation(self):
        with pytest.raises(ValueError):
            daily_counts(make_log([0.0]), 10.0, 10.0)

    def test_poisson_not_bursty(self):
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 100 * DAY, 500))
        metrics = burstiness_metrics(make_log(times), 0.0, 100 * DAY)
        assert not metrics.is_bursty
        assert metrics.daily_fano == pytest.approx(1.0, abs=0.5)

    def test_clustered_is_bursty(self):
        rng = np.random.default_rng(2)
        # 10 bursts of 50 events each
        centers = rng.uniform(0, 100 * DAY, 10)
        times = np.sort(
            (centers[:, None] + rng.exponential(600, (10, 50))).ravel()
        )
        metrics = burstiness_metrics(make_log(times), 0.0, 100 * DAY)
        assert metrics.is_bursty
        assert metrics.peak_day_share > 0.05

    def test_tiny_stream(self):
        metrics = burstiness_metrics(make_log([5.0]), 0.0, DAY)
        assert metrics.n_events == 1
        assert not metrics.is_bursty


class TestSpatial:
    def test_grid_totals(self, machine):
        gpus = [0, 0, 1, 18_687]
        log = make_log([1.0, 2.0, 3.0, 4.0], gpus=gpus)
        grid = cabinet_grid_from_events(log, machine)
        assert grid.shape == (25, 8)
        assert grid.sum() == 4
        assert grid[machine.row[0], machine.col[0]] >= 3

    def test_cage_distribution(self, machine):
        # pick one gpu per cage
        per_cage_gpu = [
            int(np.flatnonzero(machine.cage == c)[0]) for c in range(3)
        ]
        log = make_log([1.0, 2.0, 3.0, 4.0],
                       gpus=[per_cage_gpu[0], per_cage_gpu[2],
                             per_cage_gpu[2], per_cage_gpu[1]])
        assert cage_distribution(log, machine).tolist() == [1, 1, 2]
        assert distinct_card_cage_distribution(log, machine).tolist() == [1, 1, 1]

    def test_per_slot_cage_distribution(self, machine):
        per_slot = np.zeros(machine.n_gpus, dtype=np.int64)
        gpu_top = int(np.flatnonzero(machine.cage == 2)[0])
        per_slot[gpu_top] = 10
        events = per_slot_cage_distribution(per_slot, machine)
        assert events.tolist() == [0, 0, 10]
        distinct = per_slot_cage_distribution(per_slot, machine, distinct=True)
        assert distinct.tolist() == [0, 0, 1]

    def test_skewness(self):
        assert grid_skewness(np.ones((25, 8))) == 0.0
        spike = np.zeros((25, 8))
        spike[0, 0] = 100
        assert grid_skewness(spike) > 5
        assert grid_skewness(np.zeros((2, 2))) == 0.0

    def test_alternation_score_even_bias(self):
        grid = np.zeros((25, 8))
        grid[0::2, :] = 10  # even rows dense
        assert grid_alternation_score(grid) == pytest.approx(1.0)
        grid2 = np.ones((25, 8))
        assert grid_alternation_score(grid2) == pytest.approx(0.0, abs=1e-9)
        grid3 = np.zeros((25, 8))
        grid3[1::2, :] = 10
        assert grid_alternation_score(grid3) == pytest.approx(-1.0)

    def test_alternation_zero_grid(self):
        assert grid_alternation_score(np.zeros((25, 8))) == 0.0

    def test_row_profile(self):
        grid = np.arange(200).reshape(25, 8)
        assert row_profile(grid).shape == (25,)
        assert row_profile(grid)[0] == sum(range(8))

    def test_uniformity_chi2(self):
        assert uniformity_chi2(np.ones((5, 5))) == 0.0
        spike = np.zeros((5, 5))
        spike[0, 0] = 25
        assert uniformity_chi2(spike) > 100
