"""Statistical checks on the realized workload marginals.

The user-class design only matters if it survives into the *scheduled*
trace; these tests verify the realized per-class distributions carry
the Observation 14 structure (not just the profile parameters).
"""

import numpy as np
import pytest

from repro.workload.users import UserClass


@pytest.fixture(scope="module")
def per_class(smoke_dataset):
    """Job metrics grouped by the owning user's class."""
    ds = smoke_dataset
    trace = ds.trace
    classes = np.asarray(
        [ds.users[int(u)].user_class.value for u in trace.user]
    )
    def of(cls):
        mask = classes == cls.value
        return {
            "n": int(mask.sum()),
            "nodes": trace.n_nodes[mask],
            "walltime": trace.walltime_h[mask],
            "memory": trace.max_memory_gb[mask],
        }
    return {cls: of(cls) for cls in UserClass}


def test_every_class_runs_jobs(per_class):
    for cls, stats in per_class.items():
        assert stats["n"] > 10, f"{cls} barely ran"


def test_capability_jobs_are_biggest(per_class):
    cap = np.median(per_class[UserClass.CAPABILITY]["nodes"])
    for other in (UserClass.ORDINARY, UserClass.MARATHON, UserClass.MEMORY_HOG):
        assert cap > np.median(per_class[other]["nodes"])


def test_marathon_jobs_run_longest(per_class):
    mara = np.median(per_class[UserClass.MARATHON]["walltime"])
    for other in (UserClass.ORDINARY, UserClass.CAPABILITY, UserClass.MEMORY_HOG):
        assert mara > np.median(per_class[other]["walltime"])


def test_marathon_jobs_are_small(per_class):
    assert np.median(per_class[UserClass.MARATHON]["nodes"]) < 100


def test_memory_hogs_use_most_per_node_memory(per_class):
    hog = np.median(per_class[UserClass.MEMORY_HOG]["memory"])
    for other in (UserClass.ORDINARY, UserClass.CAPABILITY, UserClass.MARATHON):
        assert hog > 1.5 * np.median(per_class[other]["memory"])


def test_memory_hogs_are_short_and_small(per_class):
    hog = per_class[UserClass.MEMORY_HOG]
    mara = per_class[UserClass.MARATHON]
    cap = per_class[UserClass.CAPABILITY]
    assert np.median(hog["walltime"]) < np.median(mara["walltime"])
    assert np.median(hog["nodes"]) < np.median(cap["nodes"])


def test_walltime_cap_enforced(smoke_dataset):
    assert smoke_dataset.trace.walltime_h.max() <= 24.0 + 1e-9


def test_memory_cap_enforced(smoke_dataset):
    assert smoke_dataset.trace.max_memory_gb.max() <= 32.0 + 1e-9
