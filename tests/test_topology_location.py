"""Tests for node locations and cname codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import location as loc


def test_floor_dimensions():
    assert loc.N_CABINETS == 200
    assert loc.NODES_PER_CABINET == 96
    assert loc.TOTAL_POSITIONS == 19_200


def test_nodelocation_validation():
    loc.NodeLocation(0, 0, 0, 0, 0)
    loc.NodeLocation(24, 7, 2, 7, 3)
    with pytest.raises(ValueError):
        loc.NodeLocation(25, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        loc.NodeLocation(0, 8, 0, 0, 0)
    with pytest.raises(ValueError):
        loc.NodeLocation(0, 0, 3, 0, 0)
    with pytest.raises(ValueError):
        loc.NodeLocation(0, 0, 0, 8, 0)
    with pytest.raises(ValueError):
        loc.NodeLocation(0, 0, 0, 0, 4)


def test_cname_format():
    n = loc.NodeLocation(row=17, col=3, cage=2, slot=5, node=1)
    assert n.cname == "c3-17c2s5n1"


def test_cname_parse():
    assert loc.parse_cname("c3-17c2s5n1") == (17, 3, 2, 5, 1)
    assert loc.NodeLocation.from_cname("c0-0c0s0n0") == loc.NodeLocation(0, 0, 0, 0, 0)


def test_cname_parse_rejects_garbage():
    for bad in ["", "c3-17", "x3-17c2s5n1", "c3-17c2s5n1x", "c-1c2s5n1"]:
        with pytest.raises(ValueError):
            loc.parse_cname(bad)


def test_cname_parse_rejects_out_of_range_via_location():
    with pytest.raises(ValueError):
        loc.NodeLocation.from_cname("c9-0c0s0n0")  # col 9 does not exist


@given(
    row=st.integers(0, 24),
    col=st.integers(0, 7),
    cage=st.integers(0, 2),
    slot=st.integers(0, 7),
    node=st.integers(0, 3),
)
def test_cname_roundtrip(row, col, cage, slot, node):
    n = loc.NodeLocation(row, col, cage, slot, node)
    assert loc.NodeLocation.from_cname(n.cname) == n


@given(index=st.integers(0, loc.TOTAL_POSITIONS - 1))
def test_index_roundtrip(index):
    n = loc.NodeLocation.from_index(index)
    assert n.index == index


def test_position_index_layout():
    # blade-contiguous: consecutive nodes of a blade are adjacent
    a = loc.position_index(0, 0, 0, 0, 0)
    b = loc.position_index(0, 0, 0, 0, 1)
    assert b == a + 1
    # cabinets are 96 apart
    assert loc.position_index(0, 1, 0, 0, 0) == 96


def test_position_fields_vectorized():
    idx = np.arange(loc.TOTAL_POSITIONS)
    row, col, cage, slot, node = loc.position_fields(idx)
    back = loc.position_index(row, col, cage, slot, node)
    assert np.array_equal(back, idx)


def test_position_fields_out_of_range():
    with pytest.raises(ValueError):
        loc.position_fields(loc.TOTAL_POSITIONS)
    with pytest.raises(ValueError):
        loc.position_fields(-1)


def test_cabinet_property():
    n = loc.NodeLocation(2, 3, 0, 0, 0)
    assert n.cabinet == 2 * 8 + 3


def test_ordering_is_lexicographic():
    assert loc.NodeLocation(0, 0, 0, 0, 1) < loc.NodeLocation(0, 0, 0, 1, 0)
