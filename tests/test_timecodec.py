"""Property tests locking the fixed-format timestamp codec to stdlib.

The codec (``repro.telemetry.timecodec``) replaces strptime/strftime in
the telemetry hot loops; its entire contract is *indistinguishability*
from the stdlib reference over the study's time range:

* ``format_timestamp(ts)`` is byte-identical to
  ``timestamp_to_datetime(ts).strftime(TIMESTAMP_FORMAT)``;
* ``format_timestamps`` (the vectorized renderer) matches the scalar
  codec element for element;
* ``parse_timestamp(stamp)`` is bit-identical (float64) to
  ``datetime_to_timestamp(datetime.strptime(stamp, TIMESTAMP_FORMAT))``
  and rejects exactly the stamps strptime rejects.
"""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.timecodec import (
    TIMESTAMP_FORMAT,
    TIMESTAMP_WIDTH,
    format_timestamp,
    format_timestamps,
    parse_timestamp,
)
from repro.units import DAY, datetime_to_timestamp, timestamp_to_datetime

#: The study window (21 months) with a year of slack either side, so
#: the properties cover every stamp the simulator can ever render.
_TS_RANGE = st.floats(
    min_value=-365.0 * float(DAY),
    max_value=1000.0 * float(DAY),
    allow_nan=False,
    allow_infinity=False,
)

#: Adversarial fractions around the µs rounding boundary (half-even).
_EDGE_TS = [
    0.0,
    -0.0,
    1e-7,
    0.9999995,
    0.99999949999,
    1.0000005,
    59.9999999,
    86399.9999996,
    -0.5e-6,
    123456.2812499999,
    123456.2812500001,
]


def _reference_format(ts: float) -> str:
    return timestamp_to_datetime(ts).strftime(TIMESTAMP_FORMAT)


def _reference_parse(stamp: str) -> float:
    return datetime_to_timestamp(dt.datetime.strptime(stamp, TIMESTAMP_FORMAT))


class TestFormat:
    @given(ts=_TS_RANGE)
    @settings(max_examples=300, deadline=None)
    def test_matches_strftime(self, ts):
        assert format_timestamp(ts) == _reference_format(ts)

    @pytest.mark.parametrize("ts", _EDGE_TS)
    def test_rounding_edges(self, ts):
        assert format_timestamp(ts) == _reference_format(ts)

    def test_width(self):
        assert len(format_timestamp(0.0)) == TIMESTAMP_WIDTH

    @given(tss=st.lists(_TS_RANGE, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_vectorized_matches_scalar(self, tss):
        assert format_timestamps(np.asarray(tss)) == [
            format_timestamp(ts) for ts in tss
        ]

    def test_vectorized_empty(self):
        assert format_timestamps(np.asarray([], dtype=np.float64)) == []

    def test_vectorized_edges(self):
        assert format_timestamps(np.asarray(_EDGE_TS)) == [
            _reference_format(ts) for ts in _EDGE_TS
        ]


class TestParse:
    @given(ts=_TS_RANGE)
    @settings(max_examples=300, deadline=None)
    def test_matches_strptime_bitwise(self, ts):
        stamp = _reference_format(ts)
        got = parse_timestamp(stamp)
        ref = _reference_parse(stamp)
        # Bit-identical, not approximately equal.
        assert got == ref
        assert np.float64(got).tobytes() == np.float64(ref).tobytes()

    @given(ts=_TS_RANGE)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_through_text(self, ts):
        stamp = format_timestamp(ts)
        assert format_timestamp(parse_timestamp(stamp)) == stamp

    @pytest.mark.parametrize(
        "stamp",
        [
            "2013-13-01T00:00:00.000000",  # month 13
            "2013-00-01T00:00:00.000000",  # month 0
            "2013-06-32T00:00:00.000000",  # day 32
            "2013-06-00T00:00:00.000000",  # day 0
            "2015-02-29T00:00:00.000000",  # not a leap year
            "2013-06-03T24:00:00.000000",  # hour 24
            "2013-06-03T12:60:00.000000",  # minute 60
            "2013-06-03T12:00:60.000000",  # second 60
            "2013-06-03 12:00:00.000000",  # bad date/time separator
            "2013/06/03T12:00:00.000000",  # bad date separators
            "2013-06-03T12.00.00.000000",  # bad time separators
            "2013-06-03T12:00:00,000000",  # bad fraction separator
            "2013-06-03T+1:00:00.000000",  # sign where strptime wants digits
            "2013-06-03T 1:00:00.000000",  # padding
            "2013-06-03T12:00:00.0000000",  # fraction too long
            "",
            "not a stamp at all!!!!!!!!",
        ],
    )
    def test_rejects_what_strptime_rejects(self, stamp):
        with pytest.raises(ValueError):
            dt.datetime.strptime(stamp, TIMESTAMP_FORMAT)
        with pytest.raises(ValueError):
            parse_timestamp(stamp)

    def test_rejects_short_fractions_that_strptime_tolerates(self):
        # strptime's %f accepts 1-6 digits; the console format is fixed
        # width and the parser's line regex has always demanded \d{6},
        # so the codec enforces the width itself.
        stamp = "2013-06-03T12:00:00.00000"
        assert dt.datetime.strptime(stamp, TIMESTAMP_FORMAT)  # lax reference
        with pytest.raises(ValueError):
            parse_timestamp(stamp)

    def test_accepts_leap_day(self):
        stamp = "2016-02-29T12:34:56.789012"
        assert parse_timestamp(stamp) == _reference_parse(stamp)
