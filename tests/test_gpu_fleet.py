"""Tests for the GPU fleet and card heterogeneity."""

import numpy as np
import pytest

from repro.gpu.card import CardState
from repro.gpu.fleet import GPUFleet
from repro.rng import RngTree


@pytest.fixture(scope="module")
def fleet():
    return GPUFleet(18_688, RngTree(5).fresh_generator("fleet"))


def test_validation():
    rng = RngTree(0).fresh_generator("f")
    with pytest.raises(ValueError):
        GPUFleet(0, rng)
    with pytest.raises(ValueError):
        GPUFleet(10, rng, n_sbe_prone=11)


def test_prone_subpopulation_size(fleet):
    prone = np.count_nonzero(fleet.sbe_proneness)
    assert prone == 900
    assert prone < 1000  # "<1000 cards ever experienced an SBE"
    assert prone / fleet.n_slots < 0.05


def test_proneness_heavy_tailed(fleet):
    p = np.sort(fleet.sbe_proneness)[::-1]
    total = p.sum()
    # top-10 cards hold a large share; top-50 the bulk (paper Fig. 14)
    assert p[:10].sum() / total > 0.25
    assert p[:50].sum() / total > 0.5


def test_fragility_unit_mean(fleet):
    assert fleet.dbe_fragility.mean() == pytest.approx(1.0, rel=0.05)
    assert np.all(fleet.dbe_fragility > 0)


def test_card_lookup_consistent(fleet):
    card = fleet.card_in_slot(100)
    assert card.serial == int(fleet.serial_in_slot(100))
    assert card.sbe_proneness == fleet.sbe_proneness[100]


def test_top_offender_slots(fleet):
    top = fleet.top_offender_slots(10)
    assert top.shape == (10,)
    ranked = fleet.sbe_proneness[top]
    assert np.all(np.diff(ranked) <= 0)  # descending
    assert ranked[0] == fleet.sbe_proneness.max()


def test_replace_card():
    fleet = GPUFleet(100, RngTree(9).fresh_generator("small"), n_sbe_prone=10)
    slot = int(fleet.top_offender_slots(1)[0])
    old = fleet.card_in_slot(slot)
    new = fleet.replace_card(slot)
    assert old.state is CardState.HOT_SPARE
    assert new.serial != old.serial
    assert fleet.card_in_slot(slot) is new
    assert fleet.sbe_proneness[slot] == 0.0
    assert old.serial in fleet.removed_serials
    assert fleet.n_cards_in_state(CardState.HOT_SPARE) == 1
    # fleet now owns 101 cards
    assert len(fleet.all_cards) == 101


def test_reproducible(fleet):
    other = GPUFleet(18_688, RngTree(5).fresh_generator("fleet"))
    assert np.array_equal(other.sbe_proneness, fleet.sbe_proneness)
    assert np.array_equal(other.dbe_fragility, fleet.dbe_fragility)
