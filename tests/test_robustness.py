"""Robustness of the analysis toolkit against degraded inputs.

Two years of production console logs are never pristine (the paper
devotes Observations 2 and 5 to logging imperfections).  These tests
corrupt the log text in realistic ways — truncation, line damage,
unknown XIDs, duplicated segments — and check the toolkit degrades
gracefully: damage is *counted*, never silently absorbed, and the
surviving analysis stays sane.
"""

import numpy as np
import pytest

from repro.core.filtering import sequential_dedup
from repro.core.temporal import monthly_counts
from repro.errors.xid import ErrorType
from repro.telemetry.parser import ConsoleLogParser


@pytest.fixture(scope="module")
def log_text(smoke_dataset):
    return smoke_dataset.console_text


@pytest.fixture(scope="module")
def parser(smoke_dataset):
    return ConsoleLogParser(smoke_dataset.machine)


class TestCorruptedLogs:
    def test_truncated_log_still_parses(self, log_text, parser):
        lines = log_text.splitlines()
        half = "\n".join(lines[: len(lines) // 2])
        log, stats = parser.parse_text(half)
        assert stats.parsed_events == len(lines) // 2 - (
            1 if stats.malformed_lines else 0
        ) or stats.parsed_events > 0
        assert len(log) > 0

    def test_mid_line_truncation_counted(self, log_text, parser):
        text = log_text[: len(log_text) // 2]  # cuts a line in half
        log, stats = parser.parse_text(text)
        assert stats.malformed_lines <= 1
        assert len(log) == stats.parsed_events

    def test_random_byte_damage(self, log_text, parser):
        rng = np.random.default_rng(0)
        lines = log_text.splitlines()[:2000]
        damaged = []
        n_damaged = 0
        for line in lines:
            if rng.random() < 0.05:
                cut = int(rng.integers(0, len(line)))
                damaged.append(line[:cut])
                n_damaged += 1
            else:
                damaged.append(line)
        log, stats = parser.parse_lines(damaged)
        # every undamaged line parses; damaged ones are counted, with a
        # small tolerance for cuts that happen to leave a valid line
        assert stats.parsed_events >= len(lines) - n_damaged
        assert stats.parsed_events + stats.malformed_lines + \
            stats.non_gpu_lines + stats.unknown_xid_lines == len(lines)

    def test_future_xid_flagged_not_crashed(self, log_text, parser):
        extra = (
            "2014-06-01T00:00:00.000000 c0-1c0s1n0 GPU XID 119: "
            "GSP RPC timeout (a driver from the future)\n"
        )
        log, stats = parser.parse_text(extra + log_text[:100_000])
        assert stats.unknown_xid_lines == 1
        assert "119" in stats.unknown_xids_seen
        assert len(log) > 0

    def test_duplicated_segment_doubles_counts(self, smoke_dataset, parser):
        """Operators splice logs; duplicated segments must show up as
        doubled counts, not dedup magic."""
        text = smoke_dataset.console_text
        lines = text.splitlines()[:1000]
        once, _ = parser.parse_lines(lines)
        twice, _ = parser.parse_lines(lines + lines)
        assert len(twice) == 2 * len(once)

    def test_out_of_order_lines_sortable(self, log_text, parser):
        lines = log_text.splitlines()[:3000]
        rng = np.random.default_rng(1)
        rng.shuffle(lines)
        log, _ = parser.parse_lines(lines)
        sorted_log = log.sorted_by_time()
        assert sorted_log.is_sorted()
        # monthly histogram is invariant to input order
        assert np.array_equal(
            monthly_counts(sorted_log), monthly_counts(log)
        )


class TestAnalysisOnDamagedData:
    def test_filter_on_partially_lost_stream(self, smoke_dataset, parser):
        """Losing random lines must not make the 5 s filter produce
        *more* parents than the intact stream plus the losses."""
        text = smoke_dataset.console_text
        lines = text.splitlines()
        rng = np.random.default_rng(2)
        kept_lines = [l for l in lines if rng.random() > 0.3]
        full, _ = parser.parse_lines(lines)
        damaged, _ = parser.parse_lines(kept_lines)
        f_full = sequential_dedup(
            full.sorted_by_time().of_type(ErrorType.GRAPHICS_ENGINE_EXCEPTION),
            5.0,
        ).n_kept
        f_damaged = sequential_dedup(
            damaged.sorted_by_time().of_type(
                ErrorType.GRAPHICS_ENGINE_EXCEPTION
            ),
            5.0,
        ).n_kept
        # dropping children can only keep parent count roughly stable;
        # dropping parents can promote one child each — bounded growth
        assert f_damaged <= 2 * f_full + 10

    def test_empty_log_analyses(self, smoke_dataset):
        from repro.errors.event import EventLog

        empty = EventLog.empty()
        assert monthly_counts(empty).sum() == 0
        result = sequential_dedup(empty, 5.0)
        assert result.n_kept == 0 and result.n_dropped == 0
