"""Tests for checkpoint/restart theory, simulator, and lazy policies."""

import math

import numpy as np
import pytest

from repro.resilience.appsim import (
    exponential_failures,
    simulate_run,
    weibull_failures,
)
from repro.resilience.daly import (
    daly_efficiency,
    daly_optimal_interval,
    effective_application_mtbf,
    segment_expected_time,
    young_optimal_interval,
)
from repro.resilience.lazy import FixedIntervalPolicy, HazardAwarePolicy
from repro.rng import RngTree

HOUR = 3600.0


class TestDalyTheory:
    def test_young_formula(self):
        assert young_optimal_interval(60.0, 160 * HOUR) == pytest.approx(
            math.sqrt(2 * 60 * 160 * HOUR)
        )

    def test_daly_close_to_young_when_cheap(self):
        y = young_optimal_interval(10.0, 1e6)
        d = daly_optimal_interval(10.0, 1e6)
        assert d == pytest.approx(y, rel=0.01)

    def test_daly_caps_at_mtbf(self):
        assert daly_optimal_interval(100.0, 10.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            young_optimal_interval(0.0, 100.0)
        with pytest.raises(ValueError):
            daly_optimal_interval(10.0, -1.0)
        with pytest.raises(ValueError):
            segment_expected_time(0.0, 1.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            segment_expected_time(10.0, 1.0, -1.0, 100.0)

    def test_efficiency_bounded(self):
        e = daly_efficiency(1000.0, 60.0, 30.0, 160 * HOUR)
        assert 0 < e < 1

    def test_efficiency_peaks_at_optimum(self):
        """The Daly interval beats both a much shorter and a much longer
        one — the defining property of the optimum."""
        c, r, m = 120.0, 60.0, 50 * HOUR
        opt = daly_optimal_interval(c, m)
        e_opt = daly_efficiency(opt, c, r, m)
        assert e_opt > daly_efficiency(opt / 8, c, r, m)
        assert e_opt > daly_efficiency(opt * 8, c, r, m)

    def test_effective_app_mtbf(self):
        # an app on half the machine sees half the failures
        assert effective_application_mtbf(160.0, 18_688, 9344) == pytest.approx(
            320.0
        )
        with pytest.raises(ValueError):
            effective_application_mtbf(160.0, 100, 0)
        with pytest.raises(ValueError):
            effective_application_mtbf(160.0, 100, 200)


class TestAppSim:
    def gaps(self, mtbf, name="sim"):
        return exponential_failures(mtbf, RngTree(3).fresh_generator(name))

    def test_no_failures_pure_overhead(self):
        result = simulate_run(
            work_s=10_000.0,
            checkpoint_cost_s=100.0,
            restart_cost_s=50.0,
            failure_gaps=iter([1e18]),
            next_interval=FixedIntervalPolicy(1000.0),
        )
        assert result.n_failures == 0
        assert result.useful_s == 10_000.0
        assert result.n_checkpoints == 10
        assert result.checkpoint_s == 1000.0
        assert result.total_wall_s == pytest.approx(11_000.0)
        assert result.efficiency == pytest.approx(10 / 11, rel=1e-6)

    def test_failure_rolls_back_work(self):
        # one failure mid-second-segment, then quiet
        result = simulate_run(
            work_s=2000.0,
            checkpoint_cost_s=10.0,
            restart_cost_s=5.0,
            failure_gaps=iter([1510.0, 1e18]),
            next_interval=FixedIntervalPolicy(1000.0),
        )
        assert result.n_failures == 1
        assert result.lost_s == pytest.approx(500.0)
        assert result.restart_s == pytest.approx(5.0)
        assert result.useful_s == 2000.0

    def test_failure_during_checkpoint_loses_segment(self):
        # failure lands inside the first checkpoint write
        result = simulate_run(
            work_s=1000.0,
            checkpoint_cost_s=100.0,
            restart_cost_s=10.0,
            failure_gaps=iter([1050.0, 1e18]),
            next_interval=FixedIntervalPolicy(1000.0),
        )
        assert result.n_failures == 1
        # the whole 1000 s segment failed to commit the first time
        assert result.lost_s == pytest.approx(1000.0)
        assert result.useful_s == 1000.0

    def test_wall_clock_budget_accounting(self):
        """All wall time is attributed somewhere."""
        result = simulate_run(
            work_s=50_000.0,
            checkpoint_cost_s=30.0,
            restart_cost_s=20.0,
            failure_gaps=self.gaps(5_000.0),
            next_interval=FixedIntervalPolicy(500.0),
        )
        parts = sum(result.breakdown().values())
        assert parts == pytest.approx(result.total_wall_s, rel=1e-9)

    def test_simulation_matches_daly_theory(self):
        """Monte-Carlo efficiency ≈ the analytic τ/E(τ) under
        exponential failures (the classic validation)."""
        c, r, m = 60.0, 30.0, 20_000.0
        tau = daly_optimal_interval(c, m)
        result = simulate_run(
            work_s=3e6,
            checkpoint_cost_s=c,
            restart_cost_s=r,
            failure_gaps=self.gaps(m, "match"),
            next_interval=FixedIntervalPolicy(tau),
        )
        theory = daly_efficiency(tau, c, r, m)
        assert result.efficiency == pytest.approx(theory, rel=0.05)

    def test_max_wall_truncates(self):
        result = simulate_run(
            work_s=1e12,
            checkpoint_cost_s=10.0,
            restart_cost_s=10.0,
            failure_gaps=self.gaps(1000.0),
            next_interval=FixedIntervalPolicy(100.0),
            max_wall_s=50_000.0,
        )
        assert result.total_wall_s <= 51_000.0
        assert result.useful_s < 1e12

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_run(
                work_s=0.0, checkpoint_cost_s=1.0, restart_cost_s=1.0,
                failure_gaps=iter([1.0]), next_interval=FixedIntervalPolicy(1.0),
            )
        with pytest.raises(ValueError):
            simulate_run(
                work_s=10.0, checkpoint_cost_s=-1.0, restart_cost_s=1.0,
                failure_gaps=iter([1.0]), next_interval=FixedIntervalPolicy(1.0),
            )

    def test_failure_stream_validation(self):
        with pytest.raises(ValueError):
            next(exponential_failures(0.0, RngTree(0).fresh_generator("x")))
        with pytest.raises(ValueError):
            next(weibull_failures(1.0, 0.0, RngTree(0).fresh_generator("x")))


class TestLazyPolicy:
    def test_fixed_policy(self):
        policy = FixedIntervalPolicy(500.0)
        assert policy(0.0) == 500.0
        assert policy(1e9) == 500.0
        with pytest.raises(ValueError):
            FixedIntervalPolicy(0.0)

    def test_daly_constructor(self):
        policy = FixedIntervalPolicy.daly(60.0, 160 * HOUR)
        assert policy.interval_s == pytest.approx(
            daly_optimal_interval(60.0, 160 * HOUR)
        )

    def test_hazard_decays_for_clustered_failures(self):
        policy = HazardAwarePolicy(
            checkpoint_cost_s=60.0, weibull_scale_s=10_000.0, weibull_shape=0.6
        )
        assert policy.hazard(100.0) > policy.hazard(10_000.0)
        # interval therefore grows with quiet time
        assert policy(100.0) < policy(10_000.0) < policy(100_000.0)

    def test_reduces_to_fixed_for_exponential(self):
        policy = HazardAwarePolicy(
            checkpoint_cost_s=60.0, weibull_scale_s=10_000.0, weibull_shape=1.0,
            max_interval_s=1e9,
        )
        # constant hazard 1/theta -> Young interval sqrt(2 C theta)
        expected = math.sqrt(2 * 60.0 * 10_000.0)
        assert policy(10.0) == pytest.approx(expected)
        assert policy(1e6) == pytest.approx(expected)

    def test_clamps(self):
        policy = HazardAwarePolicy(
            checkpoint_cost_s=60.0, weibull_scale_s=10_000.0, weibull_shape=0.5,
            min_interval_s=100.0, max_interval_s=1000.0,
        )
        assert policy(1e-9) >= 100.0
        assert policy(1e12) == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HazardAwarePolicy(checkpoint_cost_s=0.0, weibull_scale_s=1.0,
                              weibull_shape=1.0)
        with pytest.raises(ValueError):
            HazardAwarePolicy(checkpoint_cost_s=1.0, weibull_scale_s=1.0,
                              weibull_shape=1.0, min_interval_s=10.0,
                              max_interval_s=5.0)

    def test_lazy_beats_fixed_under_clustered_failures(self):
        """The headline property: with Weibull shape < 1 failures, the
        hazard-aware policy commits the same work in less wall time than
        the best fixed (Daly) policy."""
        shape, scale = 0.55, 40_000.0
        import math as m

        mean_gap = scale * m.gamma(1 + 1 / shape)
        c, r = 120.0, 60.0
        work = 5e6

        def run(policy, name):
            return simulate_run(
                work_s=work,
                checkpoint_cost_s=c,
                restart_cost_s=r,
                failure_gaps=weibull_failures(
                    scale, shape, RngTree(11).fresh_generator(name)
                ),
                next_interval=policy,
            )

        fixed = run(FixedIntervalPolicy.daly(c, mean_gap), "w")
        lazy = run(
            HazardAwarePolicy(
                checkpoint_cost_s=c, weibull_scale_s=scale, weibull_shape=shape
            ),
            "w",  # identical failure stream
        )
        assert lazy.efficiency > fixed.efficiency
