"""Property tests for JobLocator against a brute-force oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.jobs import JobTraceBuilder
from repro.workload.lookup import JobLocator


def build_trace(jobs):
    """jobs: list of (start, duration, rank_start, length)."""
    b = JobTraceBuilder()
    for start, duration, rank_start, length in jobs:
        b.add(
            user=0,
            submit=start,
            start=start,
            end=start + duration,
            gpu_util=0.5,
            max_memory_gb=1.0,
            total_memory=1.0,
            n_apruns=1,
            runs=[(rank_start, length)],
        )
    return b.freeze()


@st.composite
def non_overlapping_jobs(draw):
    """Jobs with arbitrary times but disjoint rank runs per instant.

    To keep the oracle simple, ranks are globally disjoint (each job
    owns its own rank slice), which trivially satisfies the scheduler
    invariant.
    """
    n = draw(st.integers(1, 12))
    jobs = []
    rank = 0
    for _ in range(n):
        start = draw(st.floats(0, 5e5, allow_nan=False))
        duration = draw(st.floats(60, 86_400 * 0.9))
        length = draw(st.integers(1, 20))
        jobs.append((start, duration, rank, length))
        rank += length + draw(st.integers(0, 3))
    return jobs


class TestLocatorProperties:
    @given(jobs=non_overlapping_jobs(), t=st.floats(0, 6e5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_running_at_matches_bruteforce(self, jobs, t):
        trace = build_trace(jobs)
        rank_map = np.arange(1000)
        locator = JobLocator(trace, rank_map)
        got = set(locator.running_at(t).tolist())
        expected = {
            i for i, (s, d, *_rest) in enumerate(jobs) if s <= t < s + d
        }
        assert got == expected

    @given(jobs=non_overlapping_jobs(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_job_on_gpu_matches_bruteforce(self, jobs, data):
        trace = build_trace(jobs)
        rank_map = np.arange(1000)  # gpu id == rank
        locator = JobLocator(trace, rank_map)
        t = data.draw(st.floats(0, 6e5, allow_nan=False))
        gpu = data.draw(st.integers(0, 200))
        got = locator.job_on_gpu(t, gpu)
        expected = -1
        for i, (s, d, rank_start, length) in enumerate(jobs):
            if s <= t < s + d and rank_start <= gpu < rank_start + length:
                expected = i
                break
        assert got == expected

    @given(jobs=non_overlapping_jobs())
    @settings(max_examples=30, deadline=None)
    def test_job_gpus_are_the_allocation(self, jobs):
        trace = build_trace(jobs)
        rank_map = np.arange(1000)
        locator = JobLocator(trace, rank_map)
        for i, (_s, _d, rank_start, length) in enumerate(jobs):
            gpus = locator.job_gpus(i)
            assert gpus.tolist() == list(range(rank_start, rank_start + length))

    def test_pick_running_job_respects_weights(self):
        trace = build_trace([(0.0, 1000.0, 0, 4), (0.0, 1000.0, 10, 4)])
        locator = JobLocator(trace, np.arange(100))
        rng = np.random.default_rng(0)
        weights = np.array([1.0])  # single user 0 for both jobs
        picks = [
            locator.pick_running_job(500.0, rng, weights)
            for _ in range(50)
        ]
        assert set(picks) <= {0, 1}
        assert len(set(picks)) == 2  # both reachable

    def test_pick_on_idle_floor(self):
        trace = build_trace([(1000.0, 10.0, 0, 2)])
        locator = JobLocator(trace, np.arange(100))
        rng = np.random.default_rng(0)
        assert locator.pick_running_job(0.0, rng) == -1
