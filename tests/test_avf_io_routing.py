"""Tests for SDC/AVF accounting, .npz persistence, and torus routing."""

import math

import numpy as np
import pytest

from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.gpu.avf import (
    DEFAULT_UNPROTECTED_BITS,
    FlipOutcomeMix,
    flip_outcome_mix,
    sdc_exposure,
)
from repro.gpu.k20x import K20X, MemoryStructure
from repro.io import (
    load_event_log,
    load_job_trace,
    save_event_log,
    save_job_trace,
)
from repro.topology.routing import average_pairwise_hops, link_load, route
from repro.topology.torus import GeminiTorus
from repro.workload.jobs import JobTraceBuilder


class TestFlipOutcomes:
    def test_mix_sums_to_one(self):
        mix = flip_outcome_mix()
        assert mix.total() == pytest.approx(1.0)

    def test_corrected_dominates(self):
        """SECDED covers the overwhelming bit majority, so nearly every
        flip is silently corrected — the paper's area argument."""
        mix = flip_outcome_mix()
        assert mix.corrected > 0.9
        assert mix.potential_sdc < 1e-3

    def test_double_bit_fraction_drives_crashes(self):
        low = flip_outcome_mix(double_bit_fraction=0.01)
        high = flip_outcome_mix(double_bit_fraction=0.10)
        assert high.detected_crash > low.detected_crash

    def test_no_unprotected_no_sdc_from_logic(self):
        mix = flip_outcome_mix(unprotected_bits=0, double_bit_fraction=0.0)
        # the only residual SDC channel is parity-missed even flips (0 here)
        assert mix.potential_sdc == pytest.approx(0.0, abs=1e-12)

    def test_derating_splits_unprotected(self):
        full = flip_outcome_mix(derating=1.0)
        none = flip_outcome_mix(derating=0.0)
        assert none.potential_sdc == 0.0
        assert full.masked == pytest.approx(0.0)
        assert full.potential_sdc > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            flip_outcome_mix(unprotected_bits=-1)
        with pytest.raises(ValueError):
            flip_outcome_mix(derating=1.5)
        with pytest.raises(ValueError):
            flip_outcome_mix(double_bit_fraction=1.0)


class TestSdcExposure:
    def test_rates_scale(self):
        mix = flip_outcome_mix()
        exp = sdc_exposure(mix, flips_per_gpu_hour=0.1)
        assert exp.corrected_per_gpu_hour == pytest.approx(0.1 * mix.corrected)
        assert exp.fleet_mtbf_crash_hours > 0
        assert exp.fleet_mtt_sdc_hours > exp.fleet_mtbf_crash_hours

    def test_sdc_much_rarer_than_crashes(self):
        exp = sdc_exposure(flip_outcome_mix(), flips_per_gpu_hour=0.1)
        assert exp.sdc_to_crash_ratio < 0.1

    def test_zero_channels(self):
        mix = FlipOutcomeMix(
            corrected=1.0, detected_crash=0.0, parity_refetch=0.0,
            potential_sdc=0.0, masked=0.0,
        )
        exp = sdc_exposure(mix, flips_per_gpu_hour=1.0)
        assert math.isinf(exp.fleet_mtt_sdc_hours)
        assert exp.sdc_to_crash_ratio == 0.0

    def test_validation(self):
        mix = flip_outcome_mix()
        with pytest.raises(ValueError):
            sdc_exposure(mix, flips_per_gpu_hour=0.0)
        with pytest.raises(ValueError):
            sdc_exposure(mix, flips_per_gpu_hour=1.0, fleet_size=0)


class TestPersistence:
    def make_log(self):
        b = EventLogBuilder()
        p = b.add(1.0, 2, ErrorType.DBE,
                  structure=MemoryStructure.DEVICE_MEMORY, job=3, aux=4)
        b.add(2.0, 2, ErrorType.PREEMPTIVE_CLEANUP, parent=p)
        return b.freeze()

    def make_trace(self):
        b = JobTraceBuilder()
        b.add(user=1, submit=0.0, start=1.0, end=2.0, gpu_util=0.5,
              max_memory_gb=8.0, total_memory=4.0, n_apruns=2,
              runs=[(0, 3), (10, 2)])
        return b.freeze()

    def test_event_log_roundtrip(self, tmp_path):
        log = self.make_log()
        path = save_event_log(log, tmp_path / "events.npz")
        loaded = load_event_log(path)
        for col in ("time", "gpu", "etype", "structure", "job", "parent", "aux"):
            assert np.array_equal(getattr(loaded, col), getattr(log, col))

    def test_job_trace_roundtrip(self, tmp_path):
        trace = self.make_trace()
        path = save_job_trace(trace, tmp_path / "trace.npz")
        loaded = load_job_trace(path)
        assert np.array_equal(loaded.run_start, trace.run_start)
        assert np.array_equal(loaded.n_nodes, trace.n_nodes)
        assert loaded.job_ranks(0).tolist() == trace.job_ranks(0).tolist()

    def test_magic_checked(self, tmp_path):
        log_path = save_event_log(self.make_log(), tmp_path / "e.npz")
        with pytest.raises(ValueError):
            load_job_trace(log_path)
        trace_path = save_job_trace(self.make_trace(), tmp_path / "t.npz")
        with pytest.raises(ValueError):
            load_event_log(trace_path)

    def test_plain_npz_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ValueError):
            load_event_log(path)

    def test_smoke_dataset_roundtrip(self, smoke_dataset, tmp_path):
        path = save_event_log(smoke_dataset.events, tmp_path / "full.npz")
        loaded = load_event_log(path)
        assert len(loaded) == len(smoke_dataset.events)
        assert np.array_equal(loaded.time, smoke_dataset.events.time)


class TestRouting:
    def test_route_endpoints(self):
        path = route((0, 0, 0), (2, 1, 0))
        assert path[0] == (0, 0, 0)
        assert path[-1] == (2, 1, 0)
        # dimension order: X moves first
        assert path[1] == (1, 0, 0)
        assert len(path) == 4  # 2 X hops + 1 Y hop + endpoints share

    def test_route_wraps_short_way(self):
        path = route((24, 0, 0), (0, 0, 0))
        assert len(path) == 2  # one wraparound hop

    def test_route_self(self):
        assert route((3, 3, 3), (3, 3, 3)) == [(3, 3, 3)]

    def test_route_validates(self):
        with pytest.raises(ValueError):
            route((25, 0, 0), (0, 0, 0))

    def test_consecutive_hops_adjacent(self):
        torus = GeminiTorus()
        path = route((1, 2, 3), (20, 14, 22))
        for a, b in zip(path, path[1:]):
            assert torus.hop_distance(a, b) == 1

    def test_compact_allocation_fewer_hops(self, bare_machine):
        from repro.rng import RngTree

        torus = bare_machine.torus
        compact = bare_machine.gpu_position(
            bare_machine.allocation_order[:512]
        )
        tree = RngTree(0)
        scattered = bare_machine.gpu_position(
            tree.generator("test.scatter").choice(
                bare_machine.n_gpus, size=512, replace=False
            )
        )
        hops = tree.generator("test.routing")
        assert average_pairwise_hops(
            torus, compact, rng=hops
        ) < average_pairwise_hops(torus, scattered, rng=hops)

    def test_large_allocation_requires_explicit_rng(self, bare_machine):
        # The silent np.random.default_rng(0) fallback was a hidden
        # second RNG root (RL001); sampling now demands a stream.
        torus = bare_machine.torus
        big = bare_machine.gpu_position(bare_machine.allocation_order[:512])
        with pytest.raises(ValueError, match="RngTree"):
            average_pairwise_hops(torus, big)
        with pytest.raises(ValueError, match="RngTree"):
            link_load(torus, big, max_pairs=10)

    def test_sampled_hops_deterministic_per_stream(self, bare_machine):
        from repro.rng import RngTree

        torus = bare_machine.torus
        big = bare_machine.gpu_position(bare_machine.allocation_order[:512])
        a = average_pairwise_hops(
            torus, big, rng=RngTree(7).fresh_generator("routing")
        )
        b = average_pairwise_hops(
            torus, big, rng=RngTree(7).fresh_generator("routing")
        )
        assert a == b

    def test_link_load_dimensions(self, bare_machine):
        from repro.rng import RngTree

        torus = bare_machine.torus
        # all compute nodes of physical row 0 = torus X coordinate 0
        n_row0 = int(np.count_nonzero(bare_machine.row == 0))
        compact = bare_machine.gpu_position(
            bare_machine.allocation_order[:n_row0]
        )
        load = link_load(
            torus, compact, rng=RngTree(0).generator("test.link_load")
        )
        assert load["x"] == pytest.approx(0.0)  # single torus X coordinate
        assert load["y"] > 0 and load["z"] > 0

    def test_tiny_allocations(self):
        torus = GeminiTorus()
        assert average_pairwise_hops(torus, np.array([5])) == 0.0
        assert link_load(torus, np.array([5]))["x"] == 0.0
