"""Tests for the Gemini torus and folded cabling."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.location import TOTAL_POSITIONS
from repro.topology.torus import (
    TORUS_X,
    TORUS_Y,
    TORUS_Z,
    GeminiTorus,
    folded_order,
    folded_rank,
)


def test_torus_dimensions_cover_machine():
    # 9600 routers x 2 endpoints = 19,200 positions
    assert TORUS_X * TORUS_Y * TORUS_Z * 2 == TOTAL_POSITIONS


def test_folded_order_is_permutation():
    order = folded_order()
    assert sorted(order) == list(range(25))


def test_folded_order_shape():
    order = folded_order()
    assert order[0] == 0
    assert order[1] == 2  # evens ascending first
    assert order[12] == 24  # last even
    assert order[13] == 23  # then odds descending
    assert order[-1] == 1


def test_folded_cables_are_short():
    """Every hop in the folded ring spans at most 2 physical rows,
    including the wraparound — the whole point of folding."""
    order = list(folded_order())
    ring = order + [order[0]]
    assert max(abs(a - b) for a, b in zip(ring, ring[1:])) <= 2


def test_folded_rank_inverse():
    order = folded_order()
    rank = folded_rank()
    for x, row in enumerate(order):
        assert rank[row] == x


def test_adjacent_torus_x_alternates_physical_rows():
    """Consecutive torus X coordinates map to different physical rows
    two apart (the alternating-cabinet effect of Fig. 12)."""
    order = folded_order()
    gaps = [abs(order[i + 1] - order[i]) for i in range(len(order) - 1)]
    assert all(g == 2 for g in gaps[:11])  # within the even run


@given(index=st.integers(0, TOTAL_POSITIONS - 1))
def test_node_torus_roundtrip(index):
    torus = GeminiTorus()
    x, y, z, e = torus.node_to_torus(index)
    back = torus.torus_to_node(x, y, z, e)
    assert int(back) == index


def test_torus_to_node_validates():
    torus = GeminiTorus()
    import pytest

    with pytest.raises(ValueError):
        torus.torus_to_node(25, 0, 0, 0)
    with pytest.raises(ValueError):
        torus.torus_to_node(0, 16, 0, 0)
    with pytest.raises(ValueError):
        torus.torus_to_node(0, 0, 24, 0)
    with pytest.raises(ValueError):
        torus.torus_to_node(0, 0, 0, 2)


def test_two_nodes_per_router():
    torus = GeminiTorus()
    idx = np.arange(TOTAL_POSITIONS)
    x, y, z, e = torus.node_to_torus(idx)
    routers = x * (TORUS_Y * TORUS_Z) + y * TORUS_Z + z
    _, counts = np.unique(routers, return_counts=True)
    assert np.all(counts == 2)


def test_neighbors_symmetric_and_six():
    torus = GeminiTorus()
    coord = (3, 5, 7)
    neigh = torus.neighbors(*coord)
    assert len(neigh) == 6
    for n in neigh:
        assert coord in torus.neighbors(*n)


def test_neighbors_wrap():
    torus = GeminiTorus()
    assert (24, 0, 0) in torus.neighbors(0, 0, 0)
    assert (0, 15, 0) in torus.neighbors(0, 0, 0)
    assert (0, 0, 23) in torus.neighbors(0, 0, 0)


def test_hop_distance():
    torus = GeminiTorus()
    assert torus.hop_distance((0, 0, 0), (0, 0, 0)) == 0
    assert torus.hop_distance((0, 0, 0), (1, 1, 1)) == 3
    # wraparound is shorter
    assert torus.hop_distance((0, 0, 0), (24, 0, 0)) == 1
    assert torus.hop_distance((0, 0, 0), (0, 15, 0)) == 1


def test_torus_rank_is_dense_permutation():
    torus = GeminiTorus()
    ranks = torus.torus_rank(np.arange(TOTAL_POSITIONS))
    assert np.array_equal(np.sort(ranks), np.arange(TOTAL_POSITIONS))


def test_rank_order_walks_alternating_rows():
    """Walking allocation rank, the physical row advances 0,2,4,... —
    the folded stripe."""
    torus = GeminiTorus()
    in_order = torus.all_positions_in_rank_order()
    from repro.topology.location import position_fields

    row, _, _, _, _ = position_fields(in_order)
    # First TORUS_Y*TORUS_Z*2 = 768 positions are all in row 0, next 768 in row 2...
    block = TORUS_Y * TORUS_Z * 2
    assert np.all(row[:block] == 0)
    assert np.all(row[block : 2 * block] == 2)
    assert np.all(row[2 * block : 3 * block] == 4)
