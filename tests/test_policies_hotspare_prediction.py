"""Tests for thermal-aware allocation, the hot-spare campaign, and
precursor-based failure prediction."""

import numpy as np
import pytest

from repro.core.prediction import (
    evaluate_precursor_model,
    train_precursor_model,
)
from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.gpu.card import CardState, GPUCard
from repro.gpu.hotspare import (
    StressTestCampaign,
    StressVerdict,
    pull_hours_equivalent,
)
from repro.rng import RngTree
from repro.topology.machine import TitanMachine
from repro.topology.thermal import ThermalModel
from repro.workload.policies import (
    expected_thermal_exposure,
    thermal_aware_order,
    torus_order,
)


@pytest.fixture(scope="module")
def machine():
    return TitanMachine()


@pytest.fixture(scope="module")
def thermal(machine):
    return ThermalModel(machine.cage, RngTree(2).fresh_generator("th"))


class TestThermalPolicy:
    def test_orders_are_permutations(self, machine):
        for order in (torus_order(machine), thermal_aware_order(machine)):
            assert np.array_equal(np.sort(order), np.arange(machine.n_gpus))

    def test_thermal_order_fills_cool_cages_first(self, machine):
        order = thermal_aware_order(machine)
        cages = machine.cage[order]
        n0 = int(np.count_nonzero(machine.cage == 0))
        n1 = int(np.count_nonzero(machine.cage == 1))
        assert np.all(cages[:n0] == 0)
        assert np.all(cages[n0 : n0 + n1] == 1)
        assert np.all(cages[n0 + n1 :] == 2)

    def test_thermal_order_keeps_compactness_within_cage(self, machine):
        order = thermal_aware_order(machine)
        ranks = machine.allocation_rank[order]
        # within the cage-0 prefix, torus rank is ascending
        n0 = int(np.count_nonzero(machine.cage == 0))
        assert np.all(np.diff(ranks[:n0]) > 0)

    def test_exposure_reduced_for_large_jobs(self, machine, thermal):
        """The Observation 4 payoff: a 4,000-node job scheduled
        cage-aware sits on measurably cooler, less error-prone nodes."""
        naive = expected_thermal_exposure(
            machine, thermal, torus_order(machine), 4000
        )
        aware = expected_thermal_exposure(
            machine, thermal, thermal_aware_order(machine), 4000
        )
        assert aware < naive * 0.95

    def test_whole_machine_exposure_equal(self, machine, thermal):
        """Allocating everything, the policy cannot help."""
        naive = expected_thermal_exposure(
            machine, thermal, torus_order(machine), machine.n_gpus
        )
        aware = expected_thermal_exposure(
            machine, thermal, thermal_aware_order(machine), machine.n_gpus
        )
        assert aware == pytest.approx(naive)

    def test_validation(self, machine, thermal):
        with pytest.raises(ValueError):
            expected_thermal_exposure(
                machine, thermal, np.arange(5), 1
            )
        with pytest.raises(ValueError):
            expected_thermal_exposure(
                machine, thermal, torus_order(machine), 0
            )


class TestHotSpareCampaign:
    def make_card(self, serial, n_dbe=1, fragility=1.0):
        card = GPUCard(serial=serial, dbe_fragility=fragility)
        for i in range(n_dbe):
            card.apply_dbe(
                __import__("repro.gpu.k20x", fromlist=["MemoryStructure"])
                .MemoryStructure.DEVICE_MEMORY,
                page=i, timestamp=float(i),
                u_loss=0.9, u_double=0.9,
            )
        card.move_to_hot_spare()
        return card

    def campaign(self, name="c", **kw):
        defaults = dict(
            base_dbe_rate_per_hour=1.0 / 160.0 / 18_688,  # fleet rate/card
            rng=RngTree(5).fresh_generator(name),
        )
        defaults.update(kw)
        return StressTestCampaign(**defaults)

    def test_defective_cards_mostly_reproduce(self):
        campaign = self.campaign("defective", acceleration=3000.0,
                                 repeat_boost=100.0)
        cards = [self.make_card(i, n_dbe=2, fragility=3.0) for i in range(40)]
        results = campaign.run(cards)
        returned = sum(
            1 for r in results if r.verdict is StressVerdict.RETURN_TO_VENDOR
        )
        assert returned > 20
        for card, result in zip(cards, results):
            if result.verdict is StressVerdict.RETURN_TO_VENDOR:
                assert card.state is CardState.RETURNED
            else:
                assert card.state is CardState.HOT_SPARE

    def test_healthy_cards_mostly_clear(self):
        campaign = self.campaign("healthy")
        cards = [self.make_card(i, n_dbe=0) for i in range(40)]
        results = campaign.run(cards)
        assert StressTestCampaign.false_pull_rate(results) > 0.8

    def test_production_cards_rejected(self):
        campaign = self.campaign()
        card = GPUCard(serial=1)
        with pytest.raises(ValueError):
            campaign.run([card])

    def test_avoided_failures_counterfactual(self):
        campaign = self.campaign(repeat_boost=25.0)
        cards = [self.make_card(i, n_dbe=1, fragility=2.0) for i in range(5)]
        avoided = campaign.avoided_production_failures(cards, 10_000.0)
        expected = 5 * (1 / 160 / 18_688) * 2.0 * 25.0 * 10_000.0
        assert avoided == pytest.approx(expected)
        with pytest.raises(ValueError):
            campaign.avoided_production_failures(cards, -1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.campaign(base_dbe_rate_per_hour=0.0)
        with pytest.raises(ValueError):
            self.campaign(test_hours=0.0)
        with pytest.raises(ValueError):
            StressTestCampaign.false_pull_rate([])
        with pytest.raises(ValueError):
            pull_hours_equivalent(0.0, 1.0)

    def test_pull_hours(self):
        assert pull_hours_equivalent(336.0, 300.0) == pytest.approx(100_800.0)


class TestPrediction:
    def synth_log(self, n_pairs=60, noise=40, follow_p=1.0, seed=0):
        """DBE -> cleanup pairs plus unrelated noise events."""
        g = np.random.default_rng(seed)
        b = EventLogBuilder()
        t = 0.0
        for _ in range(n_pairs):
            t += float(g.uniform(3_000, 10_000))
            b.add(t, int(g.integers(100)), ErrorType.DBE)
            if g.random() < follow_p:
                b.add(t + float(g.uniform(10, 200)), 1,
                      ErrorType.PREEMPTIVE_CLEANUP)
        for _ in range(noise):
            b.add(float(g.uniform(0, t)), int(g.integers(100)),
                  ErrorType.CTXSW_FAULT)
        return b.freeze().sorted_by_time(), t

    def test_training_finds_the_precursor(self):
        log, _ = self.synth_log()
        model = train_precursor_model(
            log, ErrorType.PREEMPTIVE_CLEANUP, window_s=300.0
        )
        assert ErrorType.DBE in model.triggers
        assert model.trigger_probabilities[ErrorType.DBE] > 0.8
        assert ErrorType.CTXSW_FAULT not in model.triggers

    def test_evaluation_scores_high_on_clean_signal(self):
        train, _ = self.synth_log(seed=1)
        test, span = self.synth_log(seed=2)
        model = train_precursor_model(train, ErrorType.PREEMPTIVE_CLEANUP)
        score = evaluate_precursor_model(model, test, test_span_s=span)
        assert score.precision > 0.8
        assert score.recall > 0.8
        assert score.f1 > 0.8
        assert score.lift_over_random > 3.0

    def test_no_precursor_no_triggers(self):
        log, _ = self.synth_log(follow_p=0.0)
        model = train_precursor_model(log, ErrorType.PREEMPTIVE_CLEANUP)
        assert model.triggers == ()

    def test_evaluation_with_empty_model(self):
        log, span = self.synth_log(follow_p=0.0, seed=3)
        model = train_precursor_model(log, ErrorType.PREEMPTIVE_CLEANUP)
        score = evaluate_precursor_model(model, log, test_span_s=span)
        assert score.n_alarms == 0
        assert score.precision == 0.0
        assert score.recall == 0.0

    def test_span_validation(self):
        log, _ = self.synth_log()
        model = train_precursor_model(log, ErrorType.PREEMPTIVE_CLEANUP)
        with pytest.raises(ValueError):
            evaluate_precursor_model(model, log, test_span_s=0.0)

    def test_end_to_end_on_simulated_study(self, paper_dataset):
        """Train on the first 14 months, test on the rest: the DBE →
        preemptive-cleanup precursor is learnable from the console log
        and carries real lift."""
        log = paper_dataset.parsed_events
        split = 14 * 30 * 86_400.0
        train = log.in_window(0.0, split)
        test = log.in_window(split, paper_dataset.scenario.end)
        model = train_precursor_model(
            train, ErrorType.PREEMPTIVE_CLEANUP, min_probability=0.2
        )
        assert ErrorType.DBE in model.triggers
        score = evaluate_precursor_model(
            model, test, test_span_s=paper_dataset.scenario.end - split
        )
        # alarms fire on a sliver (<1 %) of the timeline yet catch a
        # third of the cleanups: two orders of magnitude over random
        assert score.precision > 0.15
        assert score.recall > 0.2
        assert score.lift_over_random > 20.0
