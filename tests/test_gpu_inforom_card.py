"""Tests for the InfoROM ledger and GPUCard lifecycle."""

import pytest

from repro.gpu.card import CardState, GPUCard
from repro.gpu.inforom import InfoROM
from repro.gpu.k20x import MemoryStructure


class TestInfoROM:
    def test_sbe_always_persists(self):
        rom = InfoROM()
        rom.record_sbe(MemoryStructure.L2_CACHE, 3)
        rom.record_sbe(MemoryStructure.L2_CACHE)
        assert rom.total_sbe == 4
        assert rom.sbe_counts[MemoryStructure.L2_CACHE] == 4

    def test_sbe_negative_rejected(self):
        with pytest.raises(ValueError):
            InfoROM().record_sbe(MemoryStructure.L2_CACHE, -1)

    def test_dbe_lost_to_shutdown_race(self):
        rom = InfoROM(dbe_loss_probability=0.5)
        assert not rom.record_dbe(
            MemoryStructure.DEVICE_MEMORY, u_loss=0.1, u_double=0.9
        )
        assert rom.total_dbe == 0

    def test_dbe_persisted(self):
        rom = InfoROM(dbe_loss_probability=0.5)
        assert rom.record_dbe(MemoryStructure.DEVICE_MEMORY, u_loss=0.9, u_double=0.9)
        assert rom.total_dbe == 1

    def test_dbe_double_commit(self):
        rom = InfoROM(dbe_double_commit_probability=0.1)
        rom.record_dbe(MemoryStructure.DEVICE_MEMORY, u_loss=0.9, u_double=0.05)
        assert rom.total_dbe == 2  # the DBE>SBE anomaly source

    def test_consistency_predicate(self):
        rom = InfoROM()
        assert rom.is_consistent()
        rom.record_dbe(MemoryStructure.DEVICE_MEMORY, u_loss=0.9, u_double=0.9)
        assert not rom.is_consistent()  # 1 DBE, 0 SBE
        rom.record_sbe(MemoryStructure.L2_CACHE, 5)
        assert rom.is_consistent()

    def test_snapshot_is_decoupled(self):
        rom = InfoROM()
        rom.record_sbe(MemoryStructure.L2_CACHE, 2)
        snap = rom.snapshot()
        snap["sbe"]["l2_cache"] = 999
        assert rom.sbe_counts[MemoryStructure.L2_CACHE] == 2

    def test_retired_pages_tracked(self):
        rom = InfoROM()
        rom.record_retired_page(17)
        assert rom.n_retired_pages == 1
        assert rom.snapshot()["retired_pages"] == [17]


class TestGPUCard:
    def make(self, **kw):
        return GPUCard(serial=1, **kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(sbe_proneness=-1.0)
        with pytest.raises(ValueError):
            self.make(dbe_fragility=0.0)

    def test_sbe_application(self):
        card = self.make()
        rec = card.apply_sbe(MemoryStructure.L2_CACHE, page=0, timestamp=1.0)
        assert rec is None
        assert card.inforom.total_sbe == 1

    def test_device_memory_double_sbe_retires(self):
        card = self.make()
        card.apply_sbe(MemoryStructure.DEVICE_MEMORY, page=3, timestamp=1.0)
        rec = card.apply_sbe(MemoryStructure.DEVICE_MEMORY, page=3, timestamp=2.0)
        assert rec is not None
        assert card.inforom.n_retired_pages == 1

    def test_l2_sbes_never_retire_pages(self):
        card = self.make()
        for t in range(5):
            card.apply_sbe(MemoryStructure.L2_CACHE, page=3, timestamp=float(t))
        assert card.inforom.n_retired_pages == 0

    def test_dbe_tracked_as_ground_truth(self):
        card = self.make()
        card.apply_dbe(
            MemoryStructure.REGISTER_FILE, page=0, timestamp=5.0,
            u_loss=0.0, u_double=1.0,  # lost to the race
        )
        assert card.n_dbe == 1  # ground truth sees it
        assert card.inforom.total_dbe == 0  # InfoROM does not

    def test_device_dbe_retires_page(self):
        card = self.make()
        rec = card.apply_dbe(
            MemoryStructure.DEVICE_MEMORY, page=8, timestamp=5.0,
            u_loss=0.99, u_double=0.99,
        )
        assert rec is not None and rec.cause == "dbe"

    def test_register_dbe_does_not_retire(self):
        card = self.make()
        rec = card.apply_dbe(
            MemoryStructure.REGISTER_FILE, page=8, timestamp=5.0,
            u_loss=0.99, u_double=0.99,
        )
        assert rec is None

    def test_lifecycle(self):
        card = self.make()
        assert card.in_production
        card.move_to_hot_spare()
        assert card.state is CardState.HOT_SPARE
        card.return_to_vendor()
        assert card.state is CardState.RETURNED

    def test_lifecycle_transitions_guarded(self):
        card = self.make()
        with pytest.raises(ValueError):
            card.return_to_vendor()  # must be hot-spare first
        card.move_to_hot_spare()
        with pytest.raises(ValueError):
            card.move_to_hot_spare()

    def test_dbe_threshold_policy(self):
        card = self.make()
        assert not card.exceeds_dbe_threshold(1)
        card.apply_dbe(
            MemoryStructure.DEVICE_MEMORY, page=0, timestamp=1.0,
            u_loss=0.9, u_double=0.9,
        )
        assert card.exceeds_dbe_threshold(1)

    def test_off_the_bus_recorded(self):
        card = self.make()
        card.apply_off_the_bus(7.0)
        assert card.otb_events == [7.0]

    def test_retirement_rollout_honored(self):
        card = self.make(retirement_active_from=100.0)
        rec = card.apply_dbe(
            MemoryStructure.DEVICE_MEMORY, page=0, timestamp=50.0,
            u_loss=0.9, u_double=0.9,
        )
        assert rec is None
