"""Tests for nvidia-smi -q text rendering and parsing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.nvsmi import NvsmiRecord
from repro.telemetry.nvsmi_text import (
    parse_nvsmi_query,
    render_nvsmi_query,
)


def make_record(**kw):
    defaults = dict(
        slot=3,
        serial=12345,
        sbe_total=7,
        dbe_total=1,
        retired_pages=2,
        temperature_c=41.0,
        sbe_by_structure={"l2_cache": 5, "device_memory": 2},
        dbe_by_structure={"device_memory": 1},
    )
    defaults.update(kw)
    return NvsmiRecord(**defaults)


class TestRender:
    def test_layout(self):
        text = render_nvsmi_query(make_record(), gpu_index=4)
        assert text.startswith("GPU 0000:04:00.0")
        assert "Tesla K20X" in text
        assert "Ecc Errors" in text
        assert "Single Bit" in text and "Double Bit" in text
        assert "Retired Page Count          : 2" in text
        assert "Pending Page Blacklist      : Yes" in text

    def test_no_retired_pages(self):
        text = render_nvsmi_query(make_record(retired_pages=0))
        assert "Pending Page Blacklist      : No" in text


class TestParse:
    def test_roundtrip(self):
        record = make_record()
        parsed = parse_nvsmi_query(render_nvsmi_query(record))
        assert parsed.serial == record.serial
        assert parsed.sbe_total == record.sbe_total
        assert parsed.dbe_total == record.dbe_total
        assert parsed.retired_pages == record.retired_pages
        assert parsed.sbe_by_structure == record.sbe_by_structure
        assert parsed.dbe_by_structure == record.dbe_by_structure
        assert parsed.temperature_c == pytest.approx(41.0, abs=1.0)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_nvsmi_query("not a report at all")

    def test_ignores_unknown_sections(self):
        text = render_nvsmi_query(make_record())
        noisy = text.replace(
            "    Ecc Errors",
            "    Clocks\n        SM : 732 MHz\n    Ecc Errors",
        )
        parsed = parse_nvsmi_query(noisy)
        assert parsed.sbe_total == 7

    @given(
        sbe_l2=st.integers(0, 100_000),
        sbe_dev=st.integers(0, 100_000),
        dbe_dev=st.integers(0, 50),
        retired=st.integers(0, 64),
        temp=st.floats(20, 95),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, sbe_l2, sbe_dev, dbe_dev, retired, temp):
        record = make_record(
            sbe_total=sbe_l2 + sbe_dev,
            dbe_total=dbe_dev,
            retired_pages=retired,
            temperature_c=float(temp),
            sbe_by_structure=(
                {"l2_cache": sbe_l2, "device_memory": sbe_dev}
                if sbe_l2 or sbe_dev
                else {}
            ),
            dbe_by_structure={"device_memory": dbe_dev} if dbe_dev else {},
        )
        parsed = parse_nvsmi_query(render_nvsmi_query(record))
        assert parsed.sbe_total == record.sbe_total
        assert parsed.dbe_total == record.dbe_total
        assert parsed.retired_pages == retired
        # zero counters are omitted from the parsed dicts by design
        expected_sbe = {k: v for k, v in record.sbe_by_structure.items() if v}
        assert parsed.sbe_by_structure == expected_sbe


class TestAgainstEmulator:
    def test_fleet_record_renders(self, smoke_dataset):
        smi = smoke_dataset.nvsmi
        table = smoke_dataset.nvsmi_table
        slot = int(np.argmax(table["sbe_total"]))
        record = smi.query(slot)
        parsed = parse_nvsmi_query(render_nvsmi_query(record))
        assert parsed.sbe_total == record.sbe_total
        assert parsed.serial == record.serial
