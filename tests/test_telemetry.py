"""Tests for console rendering/parsing, SEC rules, nvsmi, jobsnap."""

import numpy as np
import pytest

from repro.errors.event import EventLogBuilder
from repro.errors.xid import ErrorType
from repro.gpu.fleet import GPUFleet
from repro.gpu.k20x import MemoryStructure
from repro.rng import RngTree
from repro.telemetry.console import ConsoleLogWriter, render_event_line
from repro.telemetry.jobsnap import JobSnapshotFramework
from repro.telemetry.nvsmi import NvidiaSmi
from repro.telemetry.parser import ConsoleLogParser
from repro.telemetry.sec import SEC_RULES, UnmatchedLine, classify_line
from repro.topology.machine import TitanMachine
from repro.topology.thermal import ThermalModel
from repro.workload.jobs import JobTraceBuilder


@pytest.fixture(scope="module")
def machine():
    return TitanMachine()


class TestRendering:
    def test_xid_line(self):
        line = render_event_line(
            0.0, "c3-17c2s5n1", ErrorType.GRAPHICS_ENGINE_EXCEPTION, job=42
        )
        assert line == (
            "2013-06-01T00:00:00.000000 c3-17c2s5n1 "
            "GPU XID 13: Graphics Engine Exception [job=42]"
        )

    def test_dbe_line_with_structure(self):
        line = render_event_line(
            3661.5, "c0-1c0s1n0", ErrorType.DBE,
            structure_name="device_memory", page=0x1A2F3,
        )
        assert "GPU XID 48" in line
        assert "in device_memory page 0x01a2f3" in line

    def test_otb_line_has_no_xid(self):
        line = render_event_line(0.0, "c0-1c0s1n0", ErrorType.OFF_THE_BUS)
        assert "XID" not in line
        assert "fallen off the bus" in line

    def test_sbe_never_rendered(self):
        with pytest.raises(ValueError):
            render_event_line(0.0, "c0-1c0s1n0", ErrorType.SBE)


class TestSecRules:
    def test_all_xids_covered(self):
        for etype in ErrorType:
            if etype.xid is None:
                continue
            line = f"GPU XID {etype.xid}: whatever"
            got = classify_line(line)
            assert got is not None and got.xid == etype.xid

    def test_off_the_bus_phrase(self):
        assert classify_line("GPU has fallen off the bus") is ErrorType.OFF_THE_BUS

    def test_non_gpu_line(self):
        assert classify_line("kernel: Lustre timeout on nid00123") is None

    def test_unknown_xid_raises(self):
        with pytest.raises(UnmatchedLine):
            classify_line("GPU XID 79: some brand-new error class")

    def test_exact_code_match(self):
        # XID 13 rule must not match XID 130-style lines
        with pytest.raises(UnmatchedLine):
            classify_line("GPU XID 130: future error")

    def test_rules_are_ordered_unique(self):
        names = [r.name for r in SEC_RULES]
        assert len(set(names)) == len(names)


class TestRoundTrip:
    def build_log(self, machine):
        b = EventLogBuilder()
        b.add(100.0, 17, ErrorType.DBE,
              structure=MemoryStructure.DEVICE_MEMORY, job=9, aux=4242)
        b.add(105.5, 17, ErrorType.ECC_PAGE_RETIREMENT,
              structure=MemoryStructure.DEVICE_MEMORY, aux=4242)
        b.add(200.0, 9000, ErrorType.GRAPHICS_ENGINE_EXCEPTION, job=11)
        b.add(300.0, 3, ErrorType.OFF_THE_BUS)
        b.add(400.0, 4, ErrorType.SBE, structure=MemoryStructure.L2_CACHE)
        return b.freeze()

    def test_write_parse_roundtrip(self, machine):
        log = self.build_log(machine)
        writer = ConsoleLogWriter(machine)
        text = writer.to_text(log)
        parsed, stats = ConsoleLogParser(machine).parse_text(text)
        # SBE line is never written
        assert stats.parsed_events == 4
        assert len(parsed) == 4
        assert parsed.count_by_type()[ErrorType.DBE] == 1
        # fields survive
        dbe = parsed.of_type(ErrorType.DBE)
        assert int(dbe.gpu[0]) == 17
        assert int(dbe.job[0]) == 9
        assert int(dbe.aux[0]) == 4242
        assert float(dbe.time[0]) == pytest.approx(100.0, abs=1e-5)

    def test_parent_links_not_in_text(self, machine):
        b = EventLogBuilder()
        p = b.add(10.0, 5, ErrorType.DBE)
        b.add(11.0, 5, ErrorType.PREEMPTIVE_CLEANUP, parent=p)
        text = ConsoleLogWriter(machine).to_text(b.freeze())
        parsed, _ = ConsoleLogParser(machine).parse_text(text)
        assert np.all(parsed.parent == -1)  # analysis must re-derive them

    def test_malformed_lines_counted(self, machine):
        text = "garbage line\n2014-01-01T00:00:00.000000 c0-1c0s1n0 GPU XID 48: DBE\n"
        parsed, stats = ConsoleLogParser(machine).parse_text(text)
        assert stats.malformed_lines == 1
        assert stats.parsed_events == 1

    def test_unknown_xid_collected(self, machine):
        text = "2014-01-01T00:00:00.000000 c0-1c0s1n0 GPU XID 99: new thing\n"
        parsed, stats = ConsoleLogParser(machine).parse_text(text)
        assert len(parsed) == 0
        assert stats.unknown_xid_lines == 1
        assert stats.unknown_xids_seen == {"99"}

    def test_empty_lines_skipped(self, machine):
        parsed, stats = ConsoleLogParser(machine).parse_text("\n\n\n")
        assert stats.total_lines == 0

    def test_fast_lines_match_reference(self, machine):
        # The table-driven writer must be byte-identical to the per-row
        # render_event_line reference, including the SBE skip.
        log = self.build_log(machine)
        writer = ConsoleLogWriter(machine)
        assert list(writer.lines(log)) == list(writer.lines_reference(log))

    def test_fast_lines_match_reference_at_scale(self, smoke_dataset):
        writer = ConsoleLogWriter(smoke_dataset.machine)
        events = smoke_dataset.events
        assert list(writer.lines(events)) == list(writer.lines_reference(events))


class TestNvsmi:
    @pytest.fixture()
    def small(self):
        tree = RngTree(4)
        fleet = GPUFleet(200, tree.fresh_generator("fleet"), n_sbe_prone=20)
        cages = np.zeros(200, dtype=np.int64)
        thermal = ThermalModel(cages, tree.fresh_generator("thermal"))
        return fleet, NvidiaSmi(fleet, thermal)

    def test_query_single(self, small):
        fleet, smi = small
        card = fleet.card_in_slot(7)
        card.inforom.record_sbe(MemoryStructure.L2_CACHE, 5)
        rec = smi.query(7)
        assert rec.sbe_total == 5
        assert rec.sbe_by_structure == {"l2_cache": 5}
        assert rec.slot == 7 and rec.serial == card.serial

    def test_query_fleet_columns(self, small):
        fleet, smi = small
        fleet.card_in_slot(3).inforom.record_sbe(MemoryStructure.L2_CACHE, 2)
        table = smi.query_fleet()
        assert table["sbe_total"].shape == (200,)
        assert table["sbe_total"][3] == 2
        assert table["sbe_l2"][3] == 2

    def test_undercount_vs_ground_truth(self, small):
        fleet, smi = small
        card = fleet.card_in_slot(0)
        # 50 DBEs with a 30% loss race: nvsmi total falls short
        rng = np.random.default_rng(0)
        for _ in range(50):
            card.apply_dbe(
                MemoryStructure.DEVICE_MEMORY, page=int(rng.integers(1000)),
                timestamp=1.0, u_loss=float(rng.random()), u_double=1.0,
            )
        assert card.n_dbe == 50
        assert smi.fleet_dbe_total() < 50

    def test_inconsistent_cards_detected(self, small):
        fleet, smi = small
        card = fleet.card_in_slot(9)
        card.inforom.record_dbe(
            MemoryStructure.DEVICE_MEMORY, u_loss=0.99, u_double=0.99
        )
        assert 9 in smi.inconsistent_cards()


class TestJobSnap:
    def make_trace(self):
        b = JobTraceBuilder()
        for i, start in enumerate([0.0, 100.0, 200.0]):
            b.add(user=i % 2, submit=start, start=start, end=start + 50.0,
                  gpu_util=0.5, max_memory_gb=8.0, total_memory=4.0,
                  n_apruns=2, runs=[(i * 10, 4)])
        return b.freeze()

    def test_coverage_window(self):
        trace = self.make_trace()
        fw = JobSnapshotFramework(deployed_at=150.0)
        assert fw.covered_jobs(trace).tolist() == [2]

    def test_collect_and_arrays(self):
        trace = self.make_trace()
        fw = JobSnapshotFramework(deployed_at=0.0)
        records = fw.collect(trace, np.array([3, 0, 7]))
        assert len(records) == 3
        arrays = JobSnapshotFramework.to_arrays(records)
        assert arrays["sbe"].tolist() == [3, 0, 7]
        assert arrays["n_nodes"].tolist() == [4, 4, 4]
        assert arrays["user"].tolist() == [0, 1, 0]

    def test_shape_validated(self):
        trace = self.make_trace()
        fw = JobSnapshotFramework(deployed_at=0.0)
        with pytest.raises(ValueError):
            fw.collect(trace, np.array([1, 2]))
