"""Fig. 11 — XID 59/62 internal micro-controller halts.

Paper: 59 belongs to the old driver (pre-Jan'14), 62 to the new one;
neither stream is bursty.
"""

import numpy as np
from conftest import show

from repro.core.report import render_monthly_series
from repro.faults.rates import DRIVER_UPGRADE_TIME
from repro.units import month_index


def test_fig11_mcu_halts(study, benchmark, month_labels):
    figs = benchmark(study.fig11)
    for xid, fig in sorted(figs.items()):
        show(render_monthly_series(month_labels, fig.counts,
                                   f"Fig. 11 — XID {xid} per month"))
    upgrade = int(month_index(DRIVER_UPGRADE_TIME)[0])
    assert figs[59].counts[upgrade:].sum() == 0  # old driver only
    assert figs[62].counts[:upgrade].sum() == 0  # new driver only
    for fig in figs.values():
        assert fig.total > 50
        assert not fig.burstiness.is_bursty
