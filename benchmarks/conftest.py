"""Benchmark fixtures: one paper-scenario simulation per session.

Every ``bench_figXX`` file regenerates one table/figure of the paper,
printing the same rows/series the paper reports (run pytest with ``-s``
to see them) and timing the analysis kernel under pytest-benchmark.
"""

import numpy as np
import pytest

from repro.core import TitanStudy
from repro.sim import Scenario, default_dataset


@pytest.fixture(scope="session")
def dataset():
    return default_dataset(Scenario.paper())


@pytest.fixture(scope="session")
def study(dataset):
    s = TitanStudy(dataset)
    _ = s.log  # pay the render+parse cost once, outside the timings
    return s


@pytest.fixture(scope="session")
def month_labels():
    from repro.units import month_labels as labels

    return labels()


def show(text: str) -> None:
    """Print a figure block (visible with ``pytest -s``)."""
    print()
    print(text)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
