"""Pipeline benchmarks: simulation, log rendering, SEC parsing.

Not figures of the paper — these time the substrate itself so
performance regressions in the simulator or parser are visible.
"""

from conftest import show

from repro.sim import Scenario, TitanSimulation
from repro.telemetry.console import ConsoleLogWriter
from repro.telemetry.parser import ConsoleLogParser


def test_simulation_smoke_scale(benchmark):
    def run():
        return TitanSimulation(Scenario.smoke(days=20.0)).run()

    dataset = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dataset.machine.n_gpus == 18_688


def test_console_render(dataset, benchmark):
    writer = ConsoleLogWriter(dataset.machine)
    events = dataset.events.in_window(0.0, 30 * 86400.0)

    text = benchmark.pedantic(
        lambda: writer.to_text(events), rounds=1, iterations=1
    )
    assert text.count("\n") > 0
    show(f"  rendered {text.count(chr(10))} lines for the first 30 days")


def test_console_parse(dataset, benchmark):
    writer = ConsoleLogWriter(dataset.machine)
    events = dataset.events.in_window(0.0, 30 * 86400.0)
    text = writer.to_text(events)
    parser = ConsoleLogParser(dataset.machine)

    log, stats = benchmark.pedantic(
        lambda: parser.parse_text(text), rounds=1, iterations=1
    )
    assert stats.malformed_lines == 0
    assert len(log) == stats.parsed_events
