"""Extension benches: failure prediction and the monthly ops report."""

import numpy as np
from conftest import show

from repro.core.opsreport import build_monthly_report
from repro.core.prediction import (
    evaluate_precursor_model,
    train_precursor_model,
)
from repro.core.report import render_table
from repro.errors.xid import ErrorType


def test_precursor_prediction(study, dataset, benchmark):
    """Train on months 0-13, evaluate on months 14-20."""
    split = 14 * 30 * 86_400.0
    end = dataset.scenario.end
    log = study.log

    def run():
        model = train_precursor_model(
            log.in_window(0.0, split),
            ErrorType.PREEMPTIVE_CLEANUP,
            min_probability=0.2,
        )
        score = evaluate_precursor_model(
            model, log.in_window(split, end), test_span_s=end - split
        )
        return model, score

    model, score = benchmark(run)
    show(render_table(
        ["trigger", "P(cleanup within 300 s)"],
        [[t.name, f"{model.trigger_probabilities[t]:.2f}"]
         for t in model.triggers],
    ))
    show(f"  precision {score.precision:.2f}  recall {score.recall:.2f}  "
         f"F1 {score.f1:.2f}  alarm coverage "
         f"{score.alarm_coverage_fraction:.4%}  "
         f"lift over random {score.lift_over_random:.0f}x")
    assert ErrorType.DBE in model.triggers
    assert score.lift_over_random > 20


def test_monthly_ops_reports(study, dataset, benchmark):
    """Assemble the 21 monthly reports; print one."""
    totals = dataset.nvsmi_table["sbe_total"]

    def build_all():
        return [
            build_monthly_report(
                study.log, dataset.machine, m, sbe_totals=totals
            )
            for m in range(21)
        ]

    reports = benchmark.pedantic(build_all, rounds=1, iterations=1)
    show(reports[7].render())  # Jan'14: the retirement XID arrives
    assert len(reports) == 21
    assert all(r.total_incidents() > 0 for r in reports)
    # the retirement class is absent before Jan'14 and present after
    assert all(
        ErrorType.ECC_PAGE_RETIREMENT not in r.incident_counts
        for r in reports[:7]
    )
    assert any(
        ErrorType.ECC_PAGE_RETIREMENT in r.incident_counts
        for r in reports[7:]
    )
