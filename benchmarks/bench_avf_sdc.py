"""SDC-exposure bench (Section 2.1's unprotected-structures argument).

Calibrates the per-GPU raw upset rate against the study's measured SBE
volume, then reports crash and silent-corruption exposure for Titan and
an exascale fleet.
"""

from conftest import show

from repro.core.report import render_table
from repro.gpu.avf import flip_outcome_mix, sdc_exposure


def test_sdc_exposure_from_measured_sbes(study, dataset, benchmark):
    # measured corrected-error volume -> raw flip rate
    hours = (dataset.scenario.end - dataset.scenario.start) / 3600.0
    sbe_per_gpu_hour = float(
        dataset.sbe_by_slot.sum() / dataset.machine.n_gpus / hours
    )

    def analyze():
        mix = flip_outcome_mix()
        flips = sbe_per_gpu_hour / mix.corrected
        return mix, {
            fleet: sdc_exposure(mix, flips_per_gpu_hour=flips, fleet_size=fleet)
            for fleet in (18_688, 100_000)
        }

    mix, exposures = benchmark(analyze)
    show(render_table(
        ["outcome per raw flip", "probability"],
        [
            ["corrected (SBE tick)", f"{mix.corrected:.5f}"],
            ["detected crash (DBE)", f"{mix.detected_crash:.5f}"],
            ["parity refetch", f"{mix.parity_refetch:.6f}"],
            ["potential SDC", f"{mix.potential_sdc:.2e}"],
            ["masked (dead bit)", f"{mix.masked:.2e}"],
        ],
    ))
    show(render_table(
        ["fleet", "crash MTBF (h)", "mean time to SDC (h)"],
        [
            [fleet, f"{exp.fleet_mtbf_crash_hours:.1f}",
             f"{exp.fleet_mtt_sdc_hours:.0f}"]
            for fleet, exp in exposures.items()
        ],
    ))
    titan = exposures[18_688]
    # SECDED catches nearly everything; SDC stays 1-2 orders rarer than
    # crashes, exactly the paper's qualitative claim
    assert mix.corrected > 0.9
    assert titan.sdc_to_crash_ratio < 0.1
    assert titan.fleet_mtt_sdc_hours > titan.fleet_mtbf_crash_hours
