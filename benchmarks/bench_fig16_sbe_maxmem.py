"""Fig. 16 — max memory consumption vs SBEs; Observation 11.

Paper: both Spearman and Pearson below 0.50 (SBEs live mostly in the L2
cache, not in capacity-proportional structures).
"""

from conftest import show

from repro.core.correlation import sorted_curves
from repro.telemetry.jobsnap import JobSnapshotFramework


def test_fig16_max_memory(study, benchmark):
    report = benchmark(study.figs16_19)
    m = report.all_jobs["max_memory_gb"]
    me = report.excluding_offenders["max_memory_gb"]
    show(f"Fig. 16 — SBE vs max memory over {m.n_jobs} jobs")
    show(f"  all jobs        : Spearman {m.spearman:+.2f}  Pearson {m.pearson:+.2f}")
    show(f"  minus offenders : Spearman {me.spearman:+.2f}  Pearson {me.pearson:+.2f}")
    arrays = JobSnapshotFramework.to_arrays(study.ds.jobsnap_records)
    curve_m, curve_s = sorted_curves(arrays["max_memory_gb"], arrays["sbe"])
    show(f"  normalized curves over {curve_m.size} sorted jobs "
         f"(metric mean={curve_m.mean():.2f}, sbe mean={curve_s.mean():.2f})")
    assert abs(m.spearman) < 0.5 and abs(m.pearson) < 0.5
    assert abs(me.spearman) < 0.5
