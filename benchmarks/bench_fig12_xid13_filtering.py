"""Fig. 12 — XID 13 spatial distribution under time-threshold filtering.

Paper: unfiltered (top) and dropped-children (bottom) grids show the
alternating-cabinet stripe of the folded torus; the 5-second-filtered
grid (middle) counts one event per job and loses the stripe.
"""

from conftest import show

from repro.core.report import render_heatmap


def test_fig12_filtering(study, benchmark):
    fig12 = benchmark(study.fig12)
    show(render_heatmap(fig12.grid_unfiltered,
                        title="Fig. 12 (top) — XID 13, no filtering"))
    show(render_heatmap(fig12.grid_filtered,
                        title="Fig. 12 (middle) — 5 s filtered"))
    show(render_heatmap(fig12.grid_children,
                        title="Fig. 12 (bottom) — events inside the 5 s window"))
    show(f"  events: {fig12.n_unfiltered} unfiltered -> "
         f"{fig12.n_filtered} filtered")
    show(f"  even/odd-row alternation: raw {fig12.alternation_unfiltered:+.3f} "
         f"filtered {fig12.alternation_filtered:+.3f} "
         f"children {fig12.alternation_children:+.3f}")
    assert fig12.n_unfiltered > 50 * fig12.n_filtered
    assert fig12.alternation_unfiltered > 0.05
    assert fig12.alternation_children > 0.05
    assert fig12.alternation_filtered < fig12.alternation_unfiltered
