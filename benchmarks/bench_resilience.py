"""Resilience extension benches: checkpoint planning from measured MTBF.

Turns the study's headline number (DBE MTBF ~160 h fleet-wide) into the
decisions it exists to inform: optimal checkpoint intervals per job
scale, the efficiency cliff at exascale fleet sizes, and the payoff of
hazard-aware (lazy) checkpointing under temporally-clustered failures.
"""

import numpy as np
import pytest
from conftest import show

from repro.core.reliability import fit_weibull, project_fleet_mtbf
from repro.core.report import render_table
from repro.core.temporal import interarrival_hours
from repro.errors.xid import ErrorType
from repro.resilience.appsim import simulate_run, weibull_failures
from repro.resilience.daly import (
    daly_efficiency,
    daly_optimal_interval,
    effective_application_mtbf,
)
from repro.resilience.lazy import FixedIntervalPolicy, HazardAwarePolicy
from repro.rng import RngTree

HOUR = 3600.0


def test_checkpoint_intervals_from_measured_mtbf(study, benchmark):
    """Daly intervals for real job scales, driven by the *measured*
    fleet MTBF (not the configured one)."""
    fig2 = study.fig2()

    def plan():
        rows = []
        for nodes in (512, 2048, 8192, 18_688):
            app_mtbf_h = effective_application_mtbf(
                fig2.mtbf_hours, 18_688, nodes
            )
            tau = daly_optimal_interval(300.0, app_mtbf_h * HOUR)
            eff = daly_efficiency(tau, 300.0, 600.0, app_mtbf_h * HOUR)
            rows.append([nodes, f"{app_mtbf_h:.0f}", f"{tau / HOUR:.1f}",
                         f"{eff:.4f}"])
        return rows

    rows = benchmark(plan)
    show(render_table(
        ["job nodes", "app MTBF (h)", "Daly interval (h)", "efficiency"],
        rows,
    ))
    # even the full machine stays efficient at Titan's GPU failure rate
    assert float(rows[-1][3]) > 0.95


def test_exascale_projection(study, benchmark):
    """The paper's exascale framing: the same card at 100k-GPU scale."""
    fig2 = study.fig2()

    def project():
        rows = []
        for fleet, improvement in ((18_688, 1.0), (50_000, 1.0),
                                   (100_000, 1.0), (100_000, 10.0)):
            mtbf = project_fleet_mtbf(
                fig2.mtbf_hours, 18_688, fleet,
                per_device_improvement=improvement,
            )
            eff = daly_efficiency(
                daly_optimal_interval(300.0, mtbf * HOUR),
                300.0, 600.0, mtbf * HOUR,
            )
            rows.append([fleet, f"{improvement:.0f}x", f"{mtbf:.1f}",
                         f"{eff:.3f}"])
        return rows

    rows = benchmark(project)
    show(render_table(
        ["fleet GPUs", "device improvement", "fleet MTBF (h)",
         "machine-wide job efficiency"],
        rows,
    ))
    # without device improvement, exascale eats noticeable efficiency
    assert float(rows[2][3]) < float(rows[0][3])
    # a 10x better device buys it back
    assert float(rows[3][3]) > float(rows[2][3])


def test_lazy_vs_daly_under_clustered_failures(benchmark):
    """Hazard-aware checkpointing beats the best fixed interval when
    failures cluster (Weibull shape < 1), and matches it when they
    don't — the DSN'14 lazy-checkpointing result."""
    import math

    c, r = 120.0, 60.0
    work = 3e6

    def compare(shape):
        scale = 40_000.0
        mean_gap = scale * math.gamma(1 + 1 / shape)
        fixed = simulate_run(
            work_s=work, checkpoint_cost_s=c, restart_cost_s=r,
            failure_gaps=weibull_failures(
                scale, shape, RngTree(11).fresh_generator(f"w{shape}")
            ),
            next_interval=FixedIntervalPolicy.daly(c, mean_gap),
        )
        lazy = simulate_run(
            work_s=work, checkpoint_cost_s=c, restart_cost_s=r,
            failure_gaps=weibull_failures(
                scale, shape, RngTree(11).fresh_generator(f"w{shape}")
            ),
            next_interval=HazardAwarePolicy(
                checkpoint_cost_s=c, weibull_scale_s=scale,
                weibull_shape=shape,
            ),
        )
        return fixed.efficiency, lazy.efficiency

    def sweep():
        return {shape: compare(shape) for shape in (0.55, 0.75, 1.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(render_table(
        ["Weibull shape", "fixed (Daly) efficiency", "lazy efficiency"],
        [[k, f"{v[0]:.3f}", f"{v[1]:.3f}"] for k, v in results.items()],
    ))
    assert results[0.55][1] > results[0.55][0]  # clustered: lazy wins
    assert abs(results[1.0][1] - results[1.0][0]) < 0.02  # memoryless: tie


def test_measured_dbe_gaps_near_exponential(study, benchmark):
    """Cross-check: the study's DBE stream is Poisson-like, so its
    fitted Weibull shape is ~1 and fixed-interval checkpointing is
    already near-optimal for *this* error class."""
    dbe = study.log.of_type(ErrorType.DBE)
    gaps = interarrival_hours(dbe)

    fit = benchmark(lambda: fit_weibull(gaps))
    show(f"  DBE inter-arrival Weibull fit: shape={fit.shape:.2f} "
         f"scale={fit.scale:.1f} h (shape ~1 = memoryless)")
    assert fit.shape == pytest.approx(1.0, abs=0.25)
