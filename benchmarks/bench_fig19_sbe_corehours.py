"""Fig. 19 — GPU core-hours vs SBEs; Observation 12.

Paper: Spearman ≈ 0.70 with all jobs (Pearson stays low: the relation
is monotone, not linear); below 0.50 excluding offender jobs.
"""

from conftest import show


def test_fig19_core_hours(study, benchmark):
    report = benchmark(study.figs16_19)
    m = report.all_jobs["gpu_core_hours"]
    me = report.excluding_offenders["gpu_core_hours"]
    show(f"Fig. 19 — SBE vs GPU core-hours over {m.n_jobs} jobs")
    show(f"  all jobs        : Spearman {m.spearman:+.2f} (paper 0.70)  "
         f"Pearson {m.pearson:+.2f}")
    show(f"  minus offenders : Spearman {me.spearman:+.2f} (paper <0.50)")
    assert m.spearman > 0.5
    assert m.spearman >= report.all_jobs["n_nodes"].spearman - 0.05
    assert me.spearman < 0.5
