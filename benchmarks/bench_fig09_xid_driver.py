"""Fig. 9 — XID 31/32/43/44 frequencies; Observation 6.

Paper: 32 (and 38) occurred fewer than ten times over the whole run;
43 and 44 are among the frequent driver errors.
"""

from conftest import show

from repro.core.report import render_monthly_series, render_table


def test_fig9_xid_frequencies(study, benchmark, month_labels):
    figs = benchmark(study.fig9)
    show(render_table(
        ["XID", "total (5 s-filtered)"],
        [[xid, fig.total] for xid, fig in sorted(figs.items())],
    ))
    for xid in (43, 44):
        show(render_monthly_series(
            month_labels, figs[xid].counts, f"Fig. 9 — XID {xid} per month"
        ))
    assert figs[32].total < 20
    assert figs[43].total > 100
    assert figs[44].total > 100
    assert figs[31].total > 50
    # driver streams are not bursty
    assert not figs[43].burstiness.is_bursty
    assert not figs[44].burstiness.is_bursty
