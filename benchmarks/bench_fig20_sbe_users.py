"""Fig. 20 — per-user GPU core-hours vs SBEs; Observation 13.

Paper: Spearman ≈ 0.80 at the user level — higher than any job-level
metric, making userID the better proxy for SBE exposure.
"""

from conftest import show


def test_fig20_users(study, benchmark):
    fig20 = benchmark(study.fig20)
    report = study.figs16_19()
    a = fig20.all_users
    e = fig20.excluding_offenders
    show(f"Fig. 20 — user-level correlation over {a.n_users} users")
    show(f"  all users       : Spearman {a.spearman:+.2f} (paper 0.80)  "
         f"Pearson {a.pearson:+.2f}")
    show(f"  minus offenders : Spearman {e.spearman:+.2f}")
    assert a.spearman > 0.7
    assert a.spearman > report.all_jobs["gpu_core_hours"].spearman
    assert e.spearman > 0.6
