"""Fig. 13 — XID → XID follow probabilities within 300 s; Observation 9.

Paper: DBE (48) is likely followed by 45 and 63; 13 by 43; application
XIDs repeat across a job's nodes (strong diagonal); Off-the-bus, 38, 48
and 63 are isolated.
"""

import numpy as np
from conftest import show

from repro.core.report import render_heatmap
from repro.errors.xid import ErrorType


def test_fig13_follow_matrix(study, benchmark):
    fm = benchmark(study.fig13)
    labels = fm.labels()
    show(render_heatmap(fm.matrix, row_labels=labels, col_labels=labels,
                        title="Fig. 13 (top) — P(col within 300 s | row)"))
    no_diag = fm.without_same_type()
    show(render_heatmap(no_diag.matrix, row_labels=labels, col_labels=labels,
                        title="Fig. 13 (bottom) — same-type pairs excluded"))
    assert fm.value(ErrorType.DBE, ErrorType.PREEMPTIVE_CLEANUP) > 0.3
    assert fm.value(ErrorType.DBE, ErrorType.ECC_PAGE_RETIREMENT) > 0.1
    assert fm.value(ErrorType.GRAPHICS_ENGINE_EXCEPTION,
                    ErrorType.GPU_STOPPED) > 0.25
    assert fm.value(ErrorType.GRAPHICS_ENGINE_EXCEPTION,
                    ErrorType.GRAPHICS_ENGINE_EXCEPTION) > 0.9
    for isolated in (ErrorType.OFF_THE_BUS, ErrorType.DRIVER_FIRMWARE,
                     ErrorType.DBE, ErrorType.ECC_PAGE_RETIREMENT):
        assert fm.value(isolated, isolated) < 0.15
    assert np.all(np.diag(no_diag.matrix) == 0.0)
