"""Application-impact bench: pricing each error class in node-hours.

Not a figure of the paper, but the quantity its title promises
("impact on ... applications"): lost node-hours per error class under a
standard hourly-checkpoint discipline.
"""

from conftest import show

from repro.core.impact import application_impact
from repro.core.report import render_table
from repro.errors.xid import ErrorType


def test_application_impact(study, dataset, benchmark):
    report = benchmark(
        lambda: application_impact(study.log, dataset.trace)
    )
    rows = [
        [
            c.etype.xid if c.etype.xid is not None else "-",
            c.etype.label[:42],
            c.n_interruptions,
            f"{c.lost_node_hours:,.0f}",
            f"{c.mean_loss_per_interruption:,.0f}",
        ]
        for c in report.ranked_classes()[:8]
    ]
    show(render_table(
        ["XID", "class", "interruptions", "lost node-h", "mean/interruption"],
        rows,
    ))
    show(f"  interrupted jobs: {report.n_interrupted_jobs:,} of "
         f"{report.n_jobs:,} ({report.interruption_rate:.2%}); "
         f"lost fraction of delivered node-hours: {report.lost_fraction:.3%}")
    assert 0 < report.interruption_rate < 0.2
    assert report.lost_fraction < 0.05  # interruptions are a small tax
    # application XIDs dominate interruption *count*; hardware errors
    # cost more *per* interruption only if they hit big jobs
    by_type = report.per_class
    assert by_type[ErrorType.GRAPHICS_ENGINE_EXCEPTION].n_interruptions > \
        by_type[ErrorType.DBE].n_interruptions
