"""Fig. 15 — SBE cage distribution; Observation 10.

Paper: with all cards the topmost cage leads; after removing the top-50
offenders the distribution is fairly homogeneous; the count of distinct
SBE cards is flat across cages in every variant.
"""

from conftest import show

from repro.core.report import render_table


def test_fig15_sbe_cage(study, benchmark):
    fig15 = benchmark(study.fig15)
    rows = []
    for name in ("all", "minus_top10", "minus_top50"):
        ev = fig15.cage_events[name]
        di = fig15.cage_distinct[name]
        rows.append([name, *(int(x) for x in ev), *(int(x) for x in di)])
    show(render_table(
        ["variant", "ev c0", "ev c1", "ev c2", "cards c0", "cards c1", "cards c2"],
        rows,
    ))
    all_events = fig15.cage_events["all"].astype(float)
    assert all_events[2] == all_events.max()  # topmost cage leads
    minus50 = fig15.cage_events["minus_top50"].astype(float)
    assert minus50.max() / minus50.min() < 1.25  # homogeneous
    for variant in fig15.cage_distinct.values():
        v = variant.astype(float)
        assert v.max() / v.min() < 1.25  # distinct cards flat everywhere
