"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one mechanism and checks the corresponding figure
loses its signature — evidence the mechanism, not an artifact, produces
the paper's pattern.
"""

import numpy as np
import pytest
from conftest import show

from repro.core import TitanStudy
from repro.sim import Scenario, default_dataset


@pytest.fixture(scope="module")
def thermal_off_study():
    return TitanStudy(default_dataset(Scenario.no_thermal_gradient()))


@pytest.fixture(scope="module")
def no_fix_study():
    return TitanStudy(default_dataset(Scenario.no_solder_fix()))


@pytest.fixture(scope="module")
def unfolded_study():
    return TitanStudy(default_dataset(Scenario.unfolded_torus()))


def test_ablation_thermal_gradient(study, thermal_off_study, benchmark):
    """Without the cage temperature gradient the DBE cage skew vanishes."""
    baseline = study.fig3().cage_events
    flat = benchmark.pedantic(
        thermal_off_study.fig3, rounds=1, iterations=1
    ).cage_events
    show(f"  DBE cage counts with gradient: {baseline.tolist()}")
    show(f"  DBE cage counts without:       {flat.tolist()}")
    base_ratio = baseline[2] / max(baseline[0], 1)
    flat_ratio = flat[2] / max(flat[0], 1)
    assert base_ratio > 1.3
    assert flat_ratio < base_ratio


def test_ablation_solder_fix(study, no_fix_study, benchmark):
    """Without the Dec'13 rework, Off-the-bus keeps occurring."""
    fixed = study.fig4().counts
    broken = benchmark.pedantic(
        no_fix_study.fig4, rounds=1, iterations=1
    ).counts
    show(f"  OTB per month (fixed):   {fixed.tolist()}")
    show(f"  OTB per month (no fix):  {broken.tolist()}")
    # after Dec'13 (month 6) the unfixed machine keeps failing
    assert broken[7:].sum() > 10 * max(fixed[7:].sum(), 1)


def test_ablation_folded_torus(study, unfolded_study, benchmark):
    """Unfolded cabling removes the alternating-cabinet stripe."""
    folded = study.fig12()
    unfolded = benchmark.pedantic(
        unfolded_study.fig12, rounds=1, iterations=1
    )
    show(f"  alternation (folded):   {folded.alternation_unfiltered:+.3f}")
    show(f"  alternation (unfolded): {unfolded.alternation_unfiltered:+.3f}")
    assert folded.alternation_unfiltered > 0.05
    assert abs(unfolded.alternation_unfiltered) < folded.alternation_unfiltered


def test_ablation_filter_window(study, benchmark):
    """The 5-second window is not magic: any window in 2-60 s recovers
    nearly the same parent count, because echoes finish within 5 s and
    genuine parents are minutes apart."""
    def sweep():
        return {w: study.fig12(window_s=w).n_filtered for w in (2.0, 5.0, 60.0)}

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(f"  parents by window: {counts}")
    assert counts[5.0] <= counts[2.0]
    assert counts[60.0] <= counts[5.0]
    # 2 s catches most echoes already; 60 s barely over-merges
    assert counts[2.0] < 3.0 * counts[60.0]


def test_ablation_dbe_repeat_boost(study, benchmark):
    """Without the per-card repeat boost, (almost) every DBE lands on a
    fresh card: Fig. 3(b)'s distinct-cards-below-events gap closes and
    the replacement policy never triggers."""
    from repro.core.filtering import dedup_by_card
    from repro.errors.xid import ErrorType
    from repro.sim import Scenario, default_dataset
    from repro.faults.rates import RateConfig
    from repro.core import TitanStudy

    no_boost = Scenario(
        name="no_repeat_boost",
        rates=RateConfig(dbe_repeat_boost=1.0),
    )
    ablated = TitanStudy(default_dataset(no_boost))

    def measure(s):
        dbe = s.log.of_type(ErrorType.DBE)
        return len(dbe), dedup_by_card(dbe).n_kept

    base_events, base_cards = measure(study)
    abl_events, abl_cards = benchmark.pedantic(
        lambda: measure(ablated), rounds=1, iterations=1
    )
    show(f"  with boost:    {base_events} DBEs on {base_cards} cards "
         f"(gap {base_events - base_cards})")
    show(f"  without boost: {abl_events} DBEs on {abl_cards} cards "
         f"(gap {abl_events - abl_cards})")
    assert base_events - base_cards >= 2  # repeats exist with the boost
    assert abl_events - abl_cards <= 1  # and essentially vanish without
