"""Fig. 2 — monthly double-bit-error frequency; Observation 1.

Paper: one DBE about every seven days, MTBF ≈ 160 hours, no bursts.
"""

import pytest
from conftest import show

from repro.core.report import render_monthly_series


def test_fig2_dbe_monthly(study, benchmark, month_labels):
    fig2 = benchmark(study.fig2)
    show(render_monthly_series(month_labels, fig2.counts,
                               "Fig. 2 — DBEs per month"))
    show(f"  total DBEs     : {fig2.total}")
    show(f"  MTBF           : {fig2.mtbf_hours:.1f} h (paper: ~160 h)")
    show(f"  daily Fano     : {fig2.burstiness.daily_fano:.2f} (Poisson ≈ 1)")
    assert fig2.mtbf_hours == pytest.approx(160.0, rel=0.25)
    assert not fig2.burstiness.is_bursty
    assert fig2.counts.sum() == fig2.total
