"""Fig. 4 — monthly Off-the-bus frequency; Observation 4.

Paper: dominant before Dec'2013, nearly zero after the soldering fix;
events arrive clustered.
"""

from conftest import show

from repro.core.report import render_monthly_series
from repro.core.temporal import events_before_after
from repro.errors.xid import ErrorType
from repro.faults.rates import OTB_FIX_TIME


def test_fig4_otb_monthly(study, benchmark, month_labels):
    fig4 = benchmark(study.fig4)
    show(render_monthly_series(month_labels, fig4.counts,
                               "Fig. 4 — Off-the-bus per month"))
    otb = study.log.of_type(ErrorType.OFF_THE_BUS)
    before, after = events_before_after(otb, OTB_FIX_TIME)
    show(f"  before fix (Dec'13): {before}   after: {after}")
    assert before > 10 * max(after, 1)
    assert fig4.burstiness.daily_fano > 1.5  # clustered arrivals
