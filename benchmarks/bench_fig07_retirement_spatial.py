"""Fig. 7 — ECC page-retirement spatial distribution.

Paper: non-uniform, upper cages slightly more likely.
"""

from conftest import show

from repro.core.report import render_heatmap, render_table


def test_fig7_retirement_spatial(study, benchmark):
    fig7 = benchmark(study.fig7)
    show(render_heatmap(fig7.grid, title="Fig. 7 — retirements per cabinet"))
    show(render_table(
        ["cage", "events"],
        [[c, int(fig7.cage_events[c])] for c in range(3)],
    ))
    assert fig7.cage_events.sum() > 10
    # upper cages at least match the bottom cage
    assert fig7.cage_events[2] + fig7.cage_events[1] >= fig7.cage_events[0]
