"""Measure cold vs warm end-to-end pipeline time → BENCH_pipeline.json.

Runs ``python -m repro observations`` three ways against a throwaway
artifact store:

* **cold** — ``--no-cache``: simulate + render + parse + analyze;
* **cold+persist** — first ``--cache-dir`` run: same work plus writing
  every dataset layer into the store;
* **warm** — second ``--cache-dir`` run: dataset layers and figures
  come back from the store.

It asserts the acceptance contract of the artifact cache (see
docs/PERFORMANCE.md): the warm run must be at least ``--min-speedup``
(default 3×) faster than the cold run **and** its analysis output must
be line-identical to the cold run's (the cache may only ever buy time,
never change an answer).  Exit code 0 iff both hold.

The cold run is profiled through :mod:`repro.perf`, so the emitted
document carries a per-stage wall-time breakdown (``stages_s``) next to
the end-to-end timings, plus a ``gate`` section: the smoke-scenario
cold budget that CI's perf gate enforces.  ``--gate`` re-runs just the
smoke cold pipeline and fails if its wall time regresses more than the
gate tolerance (default 25 %) over the committed budget.

A ``resume_s`` section measures the supervised runner's crash-recovery
overhead: a cold ``repro run``, the same run SIGKILLed mid-figures in a
real subprocess (a SIGKILL cannot be taken in-process), and the timed
``--resume`` that completes it — asserting the resumed document is
byte-identical to the cold one.  The resume should cost roughly one
warm run: journaled stages are verified, not recomputed.

A ``memory_s`` section measures peak RSS (``getrusage`` in fresh
subprocesses) of the console round-trip at scale 1 vs scale 4, streamed
and monolithic, and gates the streamed path: quadrupling the event rate
must not grow the streamed peak past ``memory_s.max_ratio_allowed``
times the scale-1 peak.  ``--memory-gate`` re-checks just that budget.

Usage::

    PYTHONPATH=src python benchmarks/measure_pipeline.py --days 45
    PYTHONPATH=src python benchmarks/measure_pipeline.py --full
    PYTHONPATH=src python benchmarks/measure_pipeline.py --gate

Results land in ``BENCH_pipeline.json`` at the repository root
(``--gate`` only reads it).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import perf  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402

#: Smoke-scenario definition the CI perf gate times (kept independent of
#: the benched scenario so a ``--full`` regeneration still carries a
#: cheap gate budget).
GATE_DAYS = 45.0
GATE_TOLERANCE = 0.25


def _timed(argv: list[str], *, profile: bool = False) -> tuple[float, int, str]:
    """(seconds, exit code, captured stdout) of one CLI invocation.

    With ``profile=True`` the run executes under an enabled
    :mod:`repro.perf` registry; read the breakdown from
    ``perf.snapshot()`` afterwards.
    """
    buf = io.StringIO()
    if profile:
        perf.reset()
        perf.enable()
    t0 = time.perf_counter()
    try:
        with contextlib.redirect_stdout(buf):
            rc = cli_main(argv)
    finally:
        if profile:
            perf.disable()
    return time.perf_counter() - t0, rc, buf.getvalue()


def _stage_seconds() -> dict[str, float]:
    """Per-stage seconds from the last profiled run, rounded for JSON."""
    stages = perf.snapshot()["stages"]
    return {name: round(stat["seconds"], 3) for name, stat in stages.items()}


def _gate_argv(gate: dict) -> list[str]:
    return [
        "observations",
        "--days", str(gate["days"]),
        "--seed", str(gate["seed"]),
        "--no-cache",
    ]


def run_gate(out: Path) -> int:
    """CI perf gate: fail if the smoke cold run regresses past budget."""
    if not out.exists():
        print(f"gate: no committed benchmark at {out}", file=sys.stderr)
        return 2
    doc = json.loads(out.read_text())
    gate = doc.get("gate")
    if not gate:
        print(f"gate: {out} has no gate section; regenerate it",
              file=sys.stderr)
        return 2
    budget = float(gate["cold_budget_s"])
    tolerance = float(gate.get("tolerance", GATE_TOLERANCE))
    limit = budget * (1.0 + tolerance)
    cold_s, rc, _out_text = _timed(_gate_argv(gate), profile=True)
    print(f"gate: smoke cold {cold_s:.2f} s "
          f"(budget {budget:.2f} s, limit {limit:.2f} s, rc={rc})")
    if rc != 0:
        print("gate: FAIL (pipeline exited non-zero)")
        return 1
    if cold_s > limit:
        print(f"gate: FAIL (regressed {cold_s / budget - 1.0:+.0%}, "
              f"allowed +{tolerance:.0%}); per-stage breakdown:")
        for name, seconds in _stage_seconds().items():
            print(f"  {name:<20} {seconds:8.3f} s")
        return 1
    print("gate: OK")
    return 0


def _analysis_lines(text: str) -> list[str]:
    """Output lines minus the cache-status banner (path differs per run)."""
    return [l for l in text.splitlines() if not l.startswith("cache:")]


#: Journal barrier the benchmark SIGKILLs at: mid-figures, so the
#: resume both skips completed stages and computes the remainder.
_RESUME_KILL_BARRIER = 10


def _measure_resume(scenario: list[str], seed: int) -> dict:
    """Crash/resume overhead of the supervised runner.

    Cold ``repro run`` in-process, then the same run SIGKILLed at a
    journal barrier in a real subprocess (only a real process can take
    a SIGKILL), then a timed in-process ``--resume``; the resumed
    document must equal the cold document byte-for-byte.
    """
    import os
    import subprocess

    from repro.chaos.procfault import PROCFAULT_ENV

    with tempfile.TemporaryDirectory(prefix="repro-bench-resume-") as tmp:
        tmp_path = Path(tmp)
        base = ["run", *scenario, "--seed", str(seed), "--quiet"]
        cold_out = tmp_path / "cold.json"
        cold_s, cold_rc, _text = _timed([
            *base, "--cache-dir", str(tmp_path / "cold-cache"),
            "--out", str(cold_out),
        ])
        print(f"supervised cold run  {cold_s:8.2f} s  rc={cold_rc}")

        env = dict(os.environ)
        src = str(ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        env.pop("REPRO_CACHE_DIR", None)
        env[PROCFAULT_ENV] = f"kill:{_RESUME_KILL_BARRIER}"
        crash_cache = tmp_path / "crash-cache"
        crash_out = tmp_path / "crash.json"
        crash_argv = [
            sys.executable, "-m", "repro", *base,
            "--cache-dir", str(crash_cache), "--out", str(crash_out),
        ]
        t0 = time.perf_counter()
        crashed = subprocess.run(crash_argv, env=env, capture_output=True)
        killed_s = time.perf_counter() - t0
        print(f"killed at barrier {_RESUME_KILL_BARRIER}  "
              f"{killed_s:8.2f} s  rc={crashed.returncode}")

        resume_s, resume_rc, _text = _timed([
            *base, "--cache-dir", str(crash_cache),
            "--out", str(crash_out), "--resume",
        ])
        print(f"resume after crash   {resume_s:8.2f} s  rc={resume_rc}")
        identical = (
            crash_out.exists()
            and crash_out.read_bytes() == cold_out.read_bytes()
        )
        return {
            "cold_run_s": round(cold_s, 3),
            "killed_at_barrier": _RESUME_KILL_BARRIER,
            "killed_run_s": round(killed_s, 3),
            "resume_s": round(resume_s, 3),
            "resume_identical": bool(identical),
            "pass": bool(
                cold_rc == 0
                and resume_rc == 0
                and crashed.returncode < 0  # died by signal, as planned
                and identical
            ),
        }


#: Window for the memory probes (kept at the smoke default so the
#: streamed/monolithic contrast is cheap to regenerate).
_MEMORY_PROBE_DAYS = 45.0

#: Allowed streamed peak-RSS growth from scale 1 to scale 4.  The
#: console round-trip is O(chunk) either way once streamed; what grows
#: is the ground-truth event arrays (4x the fleet event rate), which
#: stay well under 2x total process RSS on top of the interpreter+numpy
#: baseline.  The monolithic path is *recorded* for contrast but not
#: gated — materializing the full log text is exactly what this budget
#: exists to avoid.
_MEMORY_MAX_RATIO = 2.0


def _memory_probe_main(scale: float, streaming: bool, seed: int) -> int:
    """Child-process body of one memory probe.

    Runs one scaled smoke scenario end to end (simulate → console
    round-trip → parsed events) and prints a JSON line with the
    process-lifetime peak RSS from ``getrusage`` — measured in a fresh
    interpreter so probes never share allocator high-water marks.
    """
    import resource

    from repro.sim.simulation import TitanSimulation
    from repro.sweep import SweepSpec
    from repro.sweep.grid import expand

    spec = SweepSpec(
        name="memprobe", base="smoke", seed=seed,
        days=_MEMORY_PROBE_DAYS, scales=(scale,),
    )
    point = expand(spec)[0]
    t0 = time.perf_counter()
    dataset = TitanSimulation(point.scenario, streaming=streaming).run()
    stats = dataset.parse_stats
    seconds = time.perf_counter() - t0
    print(json.dumps({
        "scale": scale,
        "streaming": bool(streaming),
        "lines": stats.total_lines,
        "events": len(dataset.parsed_events.time),
        "ru_maxrss_kib": resource.getrusage(
            resource.RUSAGE_SELF
        ).ru_maxrss,
        "seconds": round(seconds, 3),
    }))
    return 0


def _run_memory_probe(scale: float, streaming: bool, seed: int) -> dict:
    """Run one probe in a fresh subprocess; return its JSON report."""
    import os
    import subprocess

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()),
            "--memory-probe",
            "--probe-scale", str(scale),
            "--probe-streaming", str(int(streaming)),
            "--seed", str(seed),
        ],
        env=env, capture_output=True, text=True, check=True,
    )
    doc = json.loads(proc.stdout.strip().splitlines()[-1])
    doc["ru_maxrss_mib"] = round(doc.pop("ru_maxrss_kib") / 1024.0, 1)
    return doc


def _measure_memory(seed: int) -> dict:
    """Peak-RSS contrast of the streamed console round-trip vs scale.

    Four fresh-subprocess probes (scale 1 and 4, streamed and
    monolithic); the gate is on the *streamed* path only: its scale-4
    peak must stay within ``_MEMORY_MAX_RATIO`` of its scale-1 peak,
    i.e. quadrupling the event rate must not quadruple memory.
    """
    probes: dict[str, dict] = {}
    for scale in (1.0, 4.0):
        for streaming in (True, False):
            name = (f"scale{scale:g}_"
                    f"{'streamed' if streaming else 'monolithic'}")
            probes[name] = _run_memory_probe(scale, streaming, seed)
            print(f"memory {name:<22} "
                  f"{probes[name]['ru_maxrss_mib']:8.1f} MiB  "
                  f"({probes[name]['lines']} lines, "
                  f"{probes[name]['seconds']:.2f} s)")
    low = probes["scale1_streamed"]["ru_maxrss_mib"]
    high = probes["scale4_streamed"]["ru_maxrss_mib"]
    ratio = high / low if low > 0 else float("inf")
    return {
        "days": _MEMORY_PROBE_DAYS,
        "seed": seed,
        "probes": probes,
        "streamed_scale4_over_scale1": round(ratio, 2),
        "max_ratio_allowed": _MEMORY_MAX_RATIO,
        "pass": bool(ratio <= _MEMORY_MAX_RATIO),
        "check_with": "PYTHONPATH=src python benchmarks/measure_pipeline.py"
                      " --memory-gate",
    }


def run_memory_gate(out: Path) -> int:
    """CI memory gate: streamed peak RSS must stay flat across scale.

    Re-runs only the two streamed probes and fails when the scale-4 /
    scale-1 peak-RSS ratio exceeds the committed ``memory_s`` budget —
    the regression this guards is someone re-materializing the full log
    text somewhere inside the streamed path.
    """
    if not out.exists():
        print(f"memory-gate: no committed benchmark at {out}",
              file=sys.stderr)
        return 2
    doc = json.loads(out.read_text())
    memory = doc.get("memory_s")
    if not memory:
        print(f"memory-gate: {out} has no memory_s section; regenerate it",
              file=sys.stderr)
        return 2
    seed = int(memory["seed"])
    max_ratio = float(memory["max_ratio_allowed"])
    low = _run_memory_probe(1.0, True, seed)
    high = _run_memory_probe(4.0, True, seed)
    ratio = (
        high["ru_maxrss_mib"] / low["ru_maxrss_mib"]
        if low["ru_maxrss_mib"] > 0 else float("inf")
    )
    print(f"memory-gate: streamed scale-1 {low['ru_maxrss_mib']:.1f} MiB, "
          f"scale-4 {high['ru_maxrss_mib']:.1f} MiB "
          f"(ratio {ratio:.2f}, allowed {max_ratio:.2f})")
    if ratio > max_ratio:
        print("memory-gate: FAIL (streamed peak RSS no longer flat "
              "across the scale axis)")
        return 1
    print("memory-gate: OK")
    return 0


#: Required cold/warm ratio for the sweep engine's warm rerun: with the
#: journal gone but the store intact, every point summary must come
#: back from its content address instead of re-running the physics.
_SWEEP_MIN_SPEEDUP = 5.0


def _measure_sweep(seed: int) -> dict:
    """Cold vs warm sensitivity-sweep wall time over a small grid.

    Cold: six scenario points simulated end to end.  Warm: journal
    deleted, store kept — the rerun must reassemble a byte-identical
    table from cached summaries at least ``_SWEEP_MIN_SPEEDUP`` times
    faster.  Both legs run serially so the ratio measures the cache,
    not process-pool startup.
    """
    from repro.cache.store import ArtifactStore
    from repro.sweep import RateMultipliers, SweepSpec, run_sweep

    spec = SweepSpec(
        name="bench",
        base="smoke",
        seed=seed,
        days=3.0,
        scales=(1.0, 2.0, 3.0),
        rates=(RateMultipliers(), RateMultipliers(dbe=2.0)),
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as tmp:
        store = ArtifactStore(Path(tmp) / "store")
        t0 = time.perf_counter()
        cold = run_sweep(spec, store)
        cold_s = time.perf_counter() - t0
        print(f"sweep cold ({spec.n_points} pts) {cold_s:8.2f} s")
        Path(cold.journal_path).unlink()
        t0 = time.perf_counter()
        warm = run_sweep(spec, store)
        warm_s = time.perf_counter() - t0
        print(f"sweep warm rerun     {warm_s:8.2f} s")
    identical = warm.table_sha256 == cold.table_sha256
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "n_points": spec.n_points,
        "cold_s": round(cold_s, 3),
        "warm_rerun_s": round(warm_s, 3),
        "speedup_cold_over_warm": round(speedup, 2),
        "min_speedup_required": _SWEEP_MIN_SPEEDUP,
        "table_identical": bool(identical),
        "pass": bool(
            identical
            and speedup >= _SWEEP_MIN_SPEEDUP
            and all(p.warm for p in warm.points)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--full", action="store_true",
                    help="use the full 21-month paper scenario")
    ap.add_argument("--days", type=float, default=45.0,
                    help="window for the quick scenario (ignored with --full)")
    ap.add_argument("--seed", type=int, default=20131001)
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="required cold/warm ratio (exit 1 below this)")
    ap.add_argument("--out", type=Path, default=ROOT / "BENCH_pipeline.json")
    ap.add_argument("--gate", action="store_true",
                    help="CI mode: time the smoke cold run against the "
                         "committed gate budget instead of regenerating")
    ap.add_argument("--memory-gate", action="store_true",
                    help="CI mode: check streamed peak RSS stays flat "
                         "across the scale axis (memory_s budget)")
    ap.add_argument("--memory-probe", action="store_true",
                    help=argparse.SUPPRESS)
    ap.add_argument("--probe-scale", type=float, default=1.0,
                    help=argparse.SUPPRESS)
    ap.add_argument("--probe-streaming", type=int, default=1,
                    help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.memory_probe:
        return _memory_probe_main(
            args.probe_scale, bool(args.probe_streaming), args.seed
        )
    if args.memory_gate:
        return run_memory_gate(args.out)
    if args.gate:
        return run_gate(args.out)

    scenario = ["--full"] if args.full else ["--days", str(args.days)]
    base = ["observations", *scenario, "--seed", str(args.seed)]

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        store = ["--cache-dir", str(Path(tmp) / "store")]
        cold_s, cold_rc, cold_out = _timed([*base, "--no-cache"], profile=True)
        stages_s = _stage_seconds()
        print(f"cold (no cache)      {cold_s:8.2f} s  rc={cold_rc}")
        persist_s, persist_rc, persist_out = _timed([*base, *store])
        print(f"cold + persist       {persist_s:8.2f} s  rc={persist_rc}")
        warm_s, warm_rc, warm_out = _timed([*base, *store])
        print(f"warm (store hit)     {warm_s:8.2f} s  rc={warm_rc}")

    # The gate budget is always the smoke scenario: reuse the cold run
    # when that is what we just timed, otherwise time it separately so a
    # --full regeneration still refreshes the CI budget.
    if not args.full and args.days == GATE_DAYS:
        gate_cold_s = cold_s
    else:
        gate = {"days": GATE_DAYS, "seed": args.seed}
        gate_cold_s, _gate_rc, _gate_out = _timed(_gate_argv(gate))
        print(f"gate smoke cold      {gate_cold_s:8.2f} s")

    resume = _measure_resume(scenario, args.seed)
    sweep = _measure_sweep(args.seed)
    memory = _measure_memory(args.seed)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    identical = (
        _analysis_lines(cold_out)
        == _analysis_lines(persist_out)
        == _analysis_lines(warm_out)
    ) and cold_rc == persist_rc == warm_rc
    ok = (
        identical
        and speedup >= args.min_speedup
        and resume["pass"]
        and sweep["pass"]
        and memory["pass"]
    )

    doc = {
        "command": "observations",
        "scenario": {
            "full": bool(args.full),
            "days": None if args.full else args.days,
            "seed": args.seed,
        },
        "timings_s": {
            "cold_no_cache": round(cold_s, 3),
            "cold_persist": round(persist_s, 3),
            "warm": round(warm_s, 3),
        },
        "stages_s": stages_s,
        "gate": {
            "days": GATE_DAYS,
            "seed": args.seed,
            "cold_budget_s": round(gate_cold_s, 3),
            "tolerance": GATE_TOLERANCE,
            "check_with": "PYTHONPATH=src python benchmarks/measure_pipeline.py"
                          " --gate",
        },
        "resume_s": resume,
        "sweep_s": sweep,
        "memory_s": memory,
        "speedup_cold_over_warm": round(speedup, 2),
        "min_speedup_required": args.min_speedup,
        "outputs_identical": identical,
        "pass": ok,
        "regenerate_with": "PYTHONPATH=src python benchmarks/measure_pipeline.py"
                           + (" --full" if args.full else f" --days {args.days}"),
    }
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"speedup {speedup:.1f}x (need >= {args.min_speedup}x), "
          f"outputs identical: {identical}, "
          f"resume ok: {resume['pass']}, "
          f"sweep warm {sweep['speedup_cold_over_warm']:.1f}x "
          f"(need >= {_SWEEP_MIN_SPEEDUP}x), "
          f"streamed RSS x{memory['streamed_scale4_over_scale1']:.2f} "
          f"at scale 4 (cap x{_MEMORY_MAX_RATIO}) -> {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
