"""Measure cold vs warm end-to-end pipeline time → BENCH_pipeline.json.

Runs ``python -m repro observations`` three ways against a throwaway
artifact store:

* **cold** — ``--no-cache``: simulate + render + parse + analyze;
* **cold+persist** — first ``--cache-dir`` run: same work plus writing
  every dataset layer into the store;
* **warm** — second ``--cache-dir`` run: dataset layers and figures
  come back from the store.

It asserts the acceptance contract of the artifact cache (see
docs/PERFORMANCE.md): the warm run must be at least ``--min-speedup``
(default 3×) faster than the cold run **and** its analysis output must
be line-identical to the cold run's (the cache may only ever buy time,
never change an answer).  Exit code 0 iff both hold.

Usage::

    PYTHONPATH=src python benchmarks/measure_pipeline.py --days 45
    PYTHONPATH=src python benchmarks/measure_pipeline.py --full

Results land in ``BENCH_pipeline.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402


def _timed(argv: list[str]) -> tuple[float, int, str]:
    """(seconds, exit code, captured stdout) of one CLI invocation."""
    buf = io.StringIO()
    t0 = time.perf_counter()
    with contextlib.redirect_stdout(buf):
        rc = cli_main(argv)
    return time.perf_counter() - t0, rc, buf.getvalue()


def _analysis_lines(text: str) -> list[str]:
    """Output lines minus the cache-status banner (path differs per run)."""
    return [l for l in text.splitlines() if not l.startswith("cache:")]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--full", action="store_true",
                    help="use the full 21-month paper scenario")
    ap.add_argument("--days", type=float, default=45.0,
                    help="window for the quick scenario (ignored with --full)")
    ap.add_argument("--seed", type=int, default=20131001)
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="required cold/warm ratio (exit 1 below this)")
    ap.add_argument("--out", type=Path, default=ROOT / "BENCH_pipeline.json")
    args = ap.parse_args(argv)

    scenario = ["--full"] if args.full else ["--days", str(args.days)]
    base = ["observations", *scenario, "--seed", str(args.seed)]

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        store = ["--cache-dir", str(Path(tmp) / "store")]
        cold_s, cold_rc, cold_out = _timed([*base, "--no-cache"])
        print(f"cold (no cache)      {cold_s:8.2f} s  rc={cold_rc}")
        persist_s, persist_rc, persist_out = _timed([*base, *store])
        print(f"cold + persist       {persist_s:8.2f} s  rc={persist_rc}")
        warm_s, warm_rc, warm_out = _timed([*base, *store])
        print(f"warm (store hit)     {warm_s:8.2f} s  rc={warm_rc}")

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    identical = (
        _analysis_lines(cold_out)
        == _analysis_lines(persist_out)
        == _analysis_lines(warm_out)
    ) and cold_rc == persist_rc == warm_rc
    ok = identical and speedup >= args.min_speedup

    doc = {
        "command": "observations",
        "scenario": {
            "full": bool(args.full),
            "days": None if args.full else args.days,
            "seed": args.seed,
        },
        "timings_s": {
            "cold_no_cache": round(cold_s, 3),
            "cold_persist": round(persist_s, 3),
            "warm": round(warm_s, 3),
        },
        "speedup_cold_over_warm": round(speedup, 2),
        "min_speedup_required": args.min_speedup,
        "outputs_identical": identical,
        "pass": ok,
        "regenerate_with": "PYTHONPATH=src python benchmarks/measure_pipeline.py"
                           + (" --full" if args.full else f" --days {args.days}"),
    }
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"speedup {speedup:.1f}x (need >= {args.min_speedup}x), "
          f"outputs identical: {identical} -> {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
