"""Fig. 10 — XID 13 (graphics engine exception) frequency; Observation 6.

Paper: bursty — multiple errors on the same day, spikes near deadline
weeks.
"""

from conftest import show

from repro.core.report import render_monthly_series


def test_fig10_xid13(study, benchmark, month_labels):
    fig10 = benchmark(study.fig10)
    show(render_monthly_series(month_labels, fig10.counts,
                               "Fig. 10 — XID 13 per month (job-level)"))
    b = fig10.burstiness
    show(f"  daily Fano {b.daily_fano:.1f}, inter-arrival CV "
         f"{b.interarrival_cv:.1f}, peak-day share {b.peak_day_share:.2%}")
    assert b.is_bursty
    assert fig10.total > 300
