"""Temperature-aware scheduling bench (Observation 4's operational use).

"This observation was used for improved job scheduling for large GPU
jobs at OLCF" — quantify it: thermally-accelerated error exposure of a
job under the default torus ordering vs the cage-aware ordering.
"""

from conftest import show

from repro.core.report import render_table
from repro.workload.policies import (
    expected_thermal_exposure,
    thermal_aware_order,
    torus_order,
)


def test_thermal_scheduling_payoff(dataset, benchmark):
    machine, thermal = dataset.machine, dataset.thermal

    def sweep():
        naive = torus_order(machine)
        aware = thermal_aware_order(machine)
        rows = []
        for nodes in (128, 1024, 4096, 12_288, 18_688):
            a = expected_thermal_exposure(machine, thermal, naive, nodes)
            b = expected_thermal_exposure(machine, thermal, aware, nodes)
            rows.append([nodes, f"{a:.3f}", f"{b:.3f}", f"{(1 - b / a):.1%}"])
        return rows

    rows = benchmark(sweep)
    show(render_table(
        ["job nodes", "torus-order exposure", "cage-aware exposure",
         "error-exposure reduction"],
        rows,
    ))
    # meaningful reduction for anything that fits below the top cage
    assert float(rows[1][2]) < float(rows[1][1])
    assert float(rows[2][2]) < float(rows[2][1])
    # the whole machine: no free lunch
    assert abs(float(rows[4][1]) - float(rows[4][2])) < 1e-6
