"""Generation-over-generation comparison bench.

Related work [16, 30]: "newer generations of GPUs exhibit an order of
magnitude lower soft error rate" and keep improving despite bigger
structures.  Compare the K20X-era paper scenario against the
next-generation scenario on the operational numbers a procurement
review would look at.
"""

import pytest
from conftest import show

from repro.core import TitanStudy
from repro.core.impact import application_impact
from repro.core.report import render_table
from repro.sim import Scenario, default_dataset


@pytest.fixture(scope="module")
def nextgen_study():
    return TitanStudy(default_dataset(Scenario.next_generation()))


def test_generation_comparison(study, dataset, nextgen_study, benchmark):
    def compare():
        rows = []
        for label, s in (("K20X era", study), ("next gen", nextgen_study)):
            fig2 = s.fig2()
            fig14 = s.fig14()
            impact = application_impact(s.log, s.ds.trace)
            rows.append([
                label,
                fig2.total,
                f"{fig2.mtbf_hours:.0f}" if fig2.mtbf_hours else "-",
                s.fig4().total,
                fig14.n_cards_with_sbe,
                f"{impact.lost_fraction:.3%}",
            ])
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    show(render_table(
        ["generation", "DBEs", "DBE MTBF (h)", "OTB", "SBE cards",
         "lost node-hours"],
        rows,
    ))
    k20x, nextgen = rows
    assert int(nextgen[1]) < int(k20x[1]) / 2       # far fewer DBEs
    assert int(nextgen[3]) == 0                      # no solder defect
    assert int(nextgen[4]) < int(k20x[4])            # fewer SBE cards
