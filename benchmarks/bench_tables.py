"""Tables 1 and 2: the GPU error catalogs."""

from conftest import show

from repro.core.report import render_table


def test_table1_hardware_errors(study, benchmark):
    rows = benchmark(study.table1)
    show(render_table(["GPU Error", "XID"], rows))
    labels = dict(rows)
    assert labels["Off the Bus"] == "-"
    assert labels["ECC page retirement error"] == "63,64"
    assert (
        labels["Double Bit Error (detected by the SECDED ECC, but not corrected)"]
        == "48"
    )


def test_table2_software_errors(study, benchmark):
    rows = benchmark(study.table2)
    show(render_table(["GPU Error (possible cause)", "XID"], rows))
    xids = sorted(x for _, x in rows)
    assert xids == [13, 31, 32, 38, 42, 43, 44, 45, 57, 58, 59, 62]
