"""Fig. 18 — node count vs SBEs; Observation 12.

Paper: Spearman ≈ 0.57 with all jobs; drops below 0.50 when jobs using
the top-10 offender nodes are excluded.
"""

from conftest import show


def test_fig18_nodes(study, benchmark):
    report = benchmark(study.figs16_19)
    m = report.all_jobs["n_nodes"]
    me = report.excluding_offenders["n_nodes"]
    show(f"Fig. 18 — SBE vs node count over {m.n_jobs} jobs")
    show(f"  all jobs        : Spearman {m.spearman:+.2f} (paper 0.57)  "
         f"Pearson {m.pearson:+.2f}")
    show(f"  minus offenders : Spearman {me.spearman:+.2f} (paper <0.50)")
    assert m.spearman > 0.5
    assert me.spearman < 0.5
    assert me.spearman < m.spearman
