"""Fig. 8 — page-retirement delay since the last DBE; Observation 5.

Paper: 18 retirements within 10 minutes of a DBE, 1 between 10 minutes
and 6 hours, 18 much later (double-SBE retirements), and 17 successive
DBE pairs with no retirement logged between them.
"""

from conftest import show

from repro.core.report import render_table


def test_fig8_retirement_delay(study, benchmark):
    fig8 = benchmark(study.fig8)
    show(render_table(
        ["delay bucket", "ours", "paper"],
        [
            ["<= 10 min (DBE page)", fig8.n_within_10min, 18],
            ["10 min - 6 h", fig8.n_10min_to_6h, 1],
            ["> 6 h (double-SBE)", fig8.n_beyond_6h, 18],
            ["DBE pairs w/o retirement", fig8.n_dbe_pairs_without_retirement, 17],
        ],
    ))
    assert fig8.n_within_10min >= 10
    assert fig8.n_beyond_6h >= 8
    assert fig8.n_10min_to_6h <= 0.25 * fig8.n_within_10min
    assert fig8.n_dbe_pairs_without_retirement > 5
