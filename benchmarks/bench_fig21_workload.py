"""Fig. 21 — GPU workload characteristics; Observation 14.

Paper: the biggest memory consumers use below-average core-hours and
below-median node counts; long-core-hour jobs use more nodes; some of
the longest wall-clock jobs are small.
"""

import numpy as np
from conftest import show

from repro.core.report import render_table
from repro.core.workload_analysis import panel_curves


def test_fig21_workload(study, benchmark):
    chars = benchmark(study.fig21)
    show(render_table(
        ["claim", "measured", "paper expectation"],
        [
            ["top-memory jobs' core-hours / mean",
             f"{chars.top_memory_jobs_core_hour_ratio:.2f}", "< 1"],
            ["Spearman(nodes, core-hours)",
             f"{chars.nodes_vs_core_hours_spearman:.2f}", "> 0 (panel b)"],
            ["small-node share of top-walltime jobs",
             f"{chars.long_walltime_small_node_share:.2f}", "substantial"],
            ["top-memory jobs' median nodes / median",
             f"{chars.top_memory_jobs_node_ratio:.2f}", "< 1"],
        ],
    ))
    # the four panel curve sets exist and normalize correctly
    trace = study.ds.trace
    mem_curve, nodes_curve = panel_curves(
        trace.gpu_core_hours, trace.max_memory_gb, trace.n_nodes.astype(float)
    )
    assert mem_curve.mean() == 1.0 or abs(mem_curve.mean() - 1.0) < 1e-9
    assert nodes_curve.size == len(trace)
    assert chars.observation_14_holds()
