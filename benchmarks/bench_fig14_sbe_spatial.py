"""Fig. 14 — SBE spatial skew and top-offender exclusion; Observation 10.

Paper: highly skewed with all cards; near-homogeneous once the top-50
offenders are removed; fewer than 1000 cards (<5 %) ever see an SBE.
"""

from conftest import show

from repro.core.report import render_heatmap, render_table


def test_fig14_sbe_spatial(study, benchmark):
    fig14 = benchmark(study.fig14)
    for name in ("all", "minus_top10", "minus_top50"):
        show(render_heatmap(fig14.grids[name],
                            title=f"Fig. 14 — SBEs per cabinet ({name})"))
    show(render_table(
        ["variant", "skewness (cabinet CV)"],
        [[k, f"{v:.2f}"] for k, v in fig14.skewness.items()],
    ))
    show(f"  cards with any SBE: {fig14.n_cards_with_sbe} "
         f"({fig14.fleet_fraction_with_sbe:.2%} of fleet; paper: <1000, <5 %)")
    assert fig14.skewness["all"] > fig14.skewness["minus_top10"]
    assert fig14.skewness["minus_top10"] > fig14.skewness["minus_top50"]
    assert fig14.n_cards_with_sbe < 1000
    assert fig14.fleet_fraction_with_sbe < 0.05
