"""Fig. 17 — total memory consumption vs SBEs; Observation 11.

Paper: both coefficients below 0.50.
"""

from conftest import show


def test_fig17_total_memory(study, benchmark):
    report = benchmark(study.figs16_19)
    m = report.all_jobs["total_memory"]
    me = report.excluding_offenders["total_memory"]
    show(f"Fig. 17 — SBE vs total memory over {m.n_jobs} jobs")
    show(f"  all jobs        : Spearman {m.spearman:+.2f}  Pearson {m.pearson:+.2f}")
    show(f"  minus offenders : Spearman {me.spearman:+.2f}  Pearson {me.pearson:+.2f}")
    assert abs(m.spearman) < 0.5 and abs(m.pearson) < 0.5
    assert abs(me.spearman) < 0.5
