"""Availability bench: downtime accounting over the full study.

Not a paper figure, but the operations number the paper's audience
tracks: fleet availability, MTTR per failure cause, and the monthly
downtime series (the solder era dominates it).
"""

import numpy as np
from conftest import show

from repro.core.availability import availability_report
from repro.core.report import render_monthly_series, render_table
from repro.errors.xid import ErrorType
from repro.faults.rates import OTB_FIX_TIME
from repro.units import month_index


def test_fleet_availability(dataset, benchmark, month_labels):
    report = benchmark(
        lambda: availability_report(
            dataset.node_state_log,
            window_s=dataset.scenario.end,
            n_nodes=dataset.machine.n_gpus,
        )
    )
    show(render_table(
        ["metric", "value"],
        [
            ["outages", report.n_outages],
            ["downtime (node-hours)", f"{report.total_downtime_node_hours:.1f}"],
            ["availability", f"{report.availability:.6%}"],
            ["overall MTTR (h)", f"{report.mttr_hours():.2f}"],
        ],
    ))
    show(render_table(
        ["cause", "MTTR (h)"],
        [[t.name, f"{v:.2f}"] for t, v in report.mttr_hours_by_cause.items()],
    ))
    show(render_monthly_series(
        month_labels,
        np.round(report.monthly_downtime_node_hours).astype(int),
        "downtime node-hours per month",
    ))
    assert report.availability > 0.9999
    # the off-the-bus reseat dwarfs the DBE warm boot
    assert (
        report.mttr_hours_by_cause[ErrorType.OFF_THE_BUS]
        > 3 * report.mttr_hours_by_cause[ErrorType.DBE]
    )
    # the solder era owns the downtime series
    fix_month = int(month_index(OTB_FIX_TIME)[0])
    before = report.monthly_downtime_node_hours[:fix_month].sum()
    after = report.monthly_downtime_node_hours[fix_month:].sum()
    assert before > after
