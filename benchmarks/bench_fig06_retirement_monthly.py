"""Fig. 6 — monthly ECC page-retirement frequency; Observation 5.

Paper: the XID only exists after the Jan'2014 driver rollout.
"""

import numpy as np
from conftest import show

from repro.core.report import render_monthly_series
from repro.faults.rates import DRIVER_UPGRADE_TIME
from repro.units import month_index


def test_fig6_retirement_monthly(study, benchmark, month_labels):
    fig6 = benchmark(study.fig6)
    show(render_monthly_series(month_labels, fig6.counts,
                               "Fig. 6 — ECC page retirements per month"))
    onset = int(month_index(DRIVER_UPGRADE_TIME)[0])
    assert fig6.counts[:onset].sum() == 0
    assert fig6.counts[onset:].sum() == fig6.total
    assert fig6.total > 10
    assert np.count_nonzero(fig6.counts[onset:]) >= 8  # steadily present
