"""Fig. 5 — Off-the-bus spatial distribution.

Paper: fairly distributed across the floor, upper cages hit more, the
same card almost never hit twice.
"""

from conftest import show

from repro.core.report import render_heatmap, render_table
from repro.core.spatial import grid_skewness


def test_fig5_otb_spatial(study, benchmark):
    fig5 = benchmark(study.fig5)
    show(render_heatmap(fig5.grid, title="Fig. 5 — OTB per cabinet"))
    show(render_table(
        ["cage", "events", "distinct cards"],
        [[c, int(fig5.cage_events[c]), int(fig5.cage_distinct_cards[c])]
         for c in range(3)],
    ))
    assert fig5.cage_events[2] > fig5.cage_events[0]
    # "do not tend to reappear on the same card"
    assert fig5.cage_distinct_cards.sum() >= 0.9 * fig5.cage_events.sum()
    # spread widely, not a single hot spot
    assert grid_skewness(fig5.grid) < 3.0
