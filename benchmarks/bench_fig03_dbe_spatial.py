"""Fig. 3 — DBE spatial distribution, cage breakdown, structure split.

Paper: uneven over cabinets; more DBEs in upper cages (>10 °F hotter);
86 % device memory vs 14 % register file; distinct-card counts sit
below event counts.
"""

from conftest import show

from repro.core.report import render_heatmap, render_table


def test_fig3_dbe_spatial(study, benchmark):
    fig3 = benchmark(study.fig3)
    show(render_heatmap(
        fig3.grid,
        row_labels=[str(r) for r in range(25)],
        col_labels=[str(c) for c in range(8)],
        title="Fig. 3(a) — DBEs per cabinet (rows x cols)",
    ))
    show(render_table(
        ["cage", "DBE events", "distinct cards"],
        [
            [c, int(fig3.cage_events[c]), int(fig3.cage_distinct_cards[c])]
            for c in range(3)
        ],
    ))
    show(render_table(
        ["structure", "fraction (paper: device 0.86 / regfile 0.14)"],
        [[k, f"{v:.2f}"] for k, v in sorted(fig3.structure_fractions.items())],
    ))
    assert fig3.cage_events[2] > fig3.cage_events[0]
    assert abs(fig3.structure_fractions["device_memory"] - 0.86) < 0.08
    assert fig3.cage_distinct_cards.sum() <= fig3.cage_events.sum()
